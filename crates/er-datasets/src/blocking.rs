//! Token blocking: the standard candidate-generation step of ER pipelines.
//!
//! The paper applies "the blocking technique" to filter pairs deemed unlikely
//! to match before risk analysis.  We implement classic token blocking: two
//! records become candidates when they share at least one (non-stopword) token
//! in any blocking-key attribute.  Oversized blocks are pruned, as is standard,
//! to avoid quadratic blow-up on frequent tokens.

use er_base::Table;
use er_similarity::tokenize::tokens;
use std::collections::HashMap;

/// Maximum number of records a single blocking key may contain before it is
/// discarded as non-discriminating.
pub const MAX_BLOCK_SIZE: usize = 60;

/// Minimum token length considered as a blocking key.
pub const MIN_TOKEN_LEN: usize = 3;

/// Builds the blocking index: token → record indices.
fn blocking_index(table: &Table, attrs: &[usize]) -> HashMap<String, Vec<u32>> {
    let mut index: HashMap<String, Vec<u32>> = HashMap::new();
    for (i, record) in table.records().iter().enumerate() {
        for &a in attrs {
            if let Some(s) = record.values[a].as_str() {
                for tok in tokens(s) {
                    if tok.len() >= MIN_TOKEN_LEN {
                        index.entry(tok).or_default().push(i as u32);
                    }
                }
            }
        }
    }
    index
}

/// Returns candidate pairs `(left_index, right_index)` of records sharing a
/// blocking token.  For deduplication workloads (`dedup = true`, both tables
/// being the same), only pairs with `left < right` are returned.
pub fn token_blocking_pairs(left: &Table, right: &Table, attrs: &[usize], dedup: bool) -> Vec<(u32, u32)> {
    let left_index = blocking_index(left, attrs);
    let right_index = blocking_index(right, attrs);

    let mut out: Vec<(u32, u32)> = Vec::new();
    let mut seen: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
    for (tok, ls) in &left_index {
        if ls.len() > MAX_BLOCK_SIZE {
            continue;
        }
        if let Some(rs) = right_index.get(tok) {
            if rs.len() > MAX_BLOCK_SIZE {
                continue;
            }
            for &l in ls {
                for &r in rs {
                    if dedup && r <= l {
                        continue;
                    }
                    if seen.insert((l, r)) {
                        out.push((l, r));
                    }
                }
            }
        }
    }
    // HashMap iteration order is unspecified; sort so that candidate
    // generation (and everything downstream of it) is deterministic.
    out.sort_unstable();
    out
}

/// Reduction ratio of blocking relative to the full cross product.
pub fn reduction_ratio(candidates: usize, left_size: usize, right_size: usize, dedup: bool) -> f64 {
    let total = if dedup {
        left_size.saturating_mul(left_size.saturating_sub(1)) / 2
    } else {
        left_size.saturating_mul(right_size)
    };
    if total == 0 {
        return 0.0;
    }
    1.0 - candidates as f64 / total as f64
}

/// Pair-completeness of blocking: the fraction of true matches retained.
///
/// `is_match(l, r)` must report whether a left/right index pair is equivalent.
pub fn pair_completeness<F>(candidates: &[(u32, u32)], all_matches: &[(u32, u32)], mut is_candidate: F) -> f64
where
    F: FnMut(&(u32, u32)) -> bool,
{
    let _ = candidates;
    if all_matches.is_empty() {
        return 1.0;
    }
    let kept = all_matches.iter().filter(|m| is_candidate(m)).count();
    kept as f64 / all_matches.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_base::{AttrDef, AttrType, AttrValue, Schema};

    fn table(names: &[&str]) -> Table {
        let schema = Schema::new(vec![AttrDef::new("name", AttrType::Text)]);
        let mut t = Table::new("t", schema);
        for n in names {
            t.push(vec![AttrValue::from(*n)]);
        }
        t
    }

    #[test]
    fn shared_tokens_become_candidates() {
        let left = table(&["apple ipod nano", "sony walkman player"]);
        let right = table(&["apple ipod shuffle", "canon eos camera"]);
        let pairs = token_blocking_pairs(&left, &right, &[0], false);
        assert!(pairs.contains(&(0, 0)), "ipod pair should be a candidate");
        assert!(!pairs.contains(&(1, 1)), "unrelated records should not be candidates");
    }

    #[test]
    fn dedup_blocking_orders_pairs() {
        let t = table(&["blue moon song", "blue sky song", "red rose tune"]);
        let pairs = token_blocking_pairs(&t, &t, &[0], true);
        for &(l, r) in &pairs {
            assert!(l < r);
        }
        assert!(pairs.contains(&(0, 1)));
    }

    #[test]
    fn short_tokens_are_ignored() {
        let left = table(&["ab cd", "xy zw"]);
        let right = table(&["ab thing", "zw other"]);
        let pairs = token_blocking_pairs(&left, &right, &[0], false);
        assert!(pairs.is_empty(), "2-character tokens must not create blocks: {pairs:?}");
    }

    #[test]
    fn oversized_blocks_are_pruned() {
        // 100 left and right records all sharing the token "common".
        let names: Vec<String> = (0..100).map(|i| format!("common item{i}")).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let left = table(&refs);
        let right = table(&refs);
        let pairs = token_blocking_pairs(&left, &right, &[0], false);
        // "common" exceeds MAX_BLOCK_SIZE so only the unique "itemN" tokens pair up.
        assert_eq!(pairs.len(), 100);
    }

    #[test]
    fn reduction_ratio_and_completeness() {
        assert!((reduction_ratio(100, 100, 100, false) - 0.99).abs() < 1e-12);
        assert!((reduction_ratio(0, 0, 0, false)).abs() < 1e-12);
        assert!((reduction_ratio(10, 10, 0, true) - (1.0 - 10.0 / 45.0)).abs() < 1e-12);

        let candidates = vec![(0u32, 0u32), (1, 1)];
        let matches = vec![(0u32, 0u32), (2, 2)];
        let set: std::collections::HashSet<_> = candidates.iter().copied().collect();
        let pc = pair_completeness(&candidates, &matches, |m| set.contains(m));
        assert!((pc - 0.5).abs() < 1e-12);
        assert_eq!(pair_completeness(&candidates, &[], |_| true), 1.0);
    }
}
