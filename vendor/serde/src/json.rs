//! JSON encoding of [`Value`] trees, mirroring the `serde_json` entry points.
//!
//! Floats are written with Rust's shortest round-trip formatting (`{:?}`),
//! which preserves every `f64` bit pattern including `-0.0`; the non-finite
//! values use the bare tokens `NaN`, `Infinity` and `-Infinity` (as Python's
//! `json` module emits), which the parser accepts back. Map entries keep
//! their insertion order, so encoding is deterministic.

use crate::{Deserialize, Error, Serialize, Value};

/// Encodes a value as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    out
}

/// Encodes a value as indented JSON (two spaces, like `serde_json`'s pretty
/// writer).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    out.push('\n');
    out
}

/// Parses JSON text and deserializes it into `T`.
pub fn from_str<T: for<'de> Deserialize<'de>>(text: &str) -> Result<T, Error> {
    T::from_value(&parse(text)?)
}

/// Maximum container nesting the parser accepts (mirrors `serde_json`'s
/// default recursion limit), so a corrupt or hostile document fails with a
/// parse error instead of overflowing the stack.
pub const MAX_DEPTH: usize = 128;

/// Parses JSON text into a [`Value`] tree.
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON document"));
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => write_compound(out, indent, depth, '[', ']', items.iter(), |out, item, depth| {
            write_value(out, item, indent, depth)
        }),
        Value::Map(entries) => write_compound(out, indent, depth, '{', '}', entries.iter(), |out, (k, v), depth| {
            write_string(out, k);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
            write_value(out, v, indent, depth);
        }),
    }
}

fn write_compound<I: ExactSizeIterator>(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    items: I,
    mut write_item: impl FnMut(&mut String, I::Item, usize),
) {
    out.push(open);
    let empty = items.len() == 0;
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        write_item(out, item, depth + 1);
    }
    if !empty {
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * depth));
        }
    }
    out.push(close);
}

fn write_float(out: &mut String, f: f64) {
    if f.is_nan() {
        out.push_str("NaN");
    } else if f == f64::INFINITY {
        out.push_str("Infinity");
    } else if f == f64::NEG_INFINITY {
        out.push_str("-Infinity");
    } else {
        // `{:?}` always includes a fraction or exponent ("2.0", "-0.0",
        // "1e300"), so the token re-parses into the float domain, and the
        // shortest-representation guarantee makes the round trip bit-exact.
        out.push_str(&format!("{f:?}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Current container nesting, bounded by [`MAX_DEPTH`].
    depth: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl std::fmt::Display) -> Error {
        Error::new(format!("{message} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn enter(&mut self) -> Result<(), Error> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.error(format!("nesting exceeds the maximum depth of {MAX_DEPTH}")));
        }
        Ok(())
    }

    fn eat(&mut self, token: &str) -> bool {
        if self.bytes[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(self.error("unexpected end of input")),
            Some(b'n') => {
                if self.eat("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.error("invalid token"))
                }
            }
            Some(b't') => {
                if self.eat("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.error("invalid token"))
                }
            }
            Some(b'f') => {
                if self.eat("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.error("invalid token"))
                }
            }
            Some(b'N') => {
                if self.eat("NaN") {
                    Ok(Value::Float(f64::NAN))
                } else {
                    Err(self.error("invalid token"))
                }
            }
            Some(b'I') => {
                if self.eat("Infinity") {
                    Ok(Value::Float(f64::INFINITY))
                } else {
                    Err(self.error("invalid token"))
                }
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(b'-') if self.bytes[self.pos + 1..].starts_with(b"Infinity") => {
                self.pos += 1 + "Infinity".len();
                Ok(Value::Float(f64::NEG_INFINITY))
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(c) => Err(self.error(format!("unexpected character {:?}", c as char))),
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.enter()?;
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.error("expected ',' or ']' in sequence")),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.enter()?;
        self.pos += 1; // '{'
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_whitespace();
            if self.peek() != Some(b'"') {
                return Err(self.error("expected string key in map"));
            }
            let key = self.parse_string()?;
            self.skip_whitespace();
            if self.peek() != Some(b':') {
                return Err(self.error("expected ':' after map key"));
            }
            self.pos += 1;
            self.skip_whitespace();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.error("expected ',' or '}' in map")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.pos += 1; // '"'
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.error("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.error("dangling escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let first = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair: expect a low surrogate next.
                                if !self.eat("\\u") {
                                    return Err(self.error("unpaired UTF-16 surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                first
                            };
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return Err(self.error(format!("invalid code point {code:#x}"))),
                            }
                        }
                        other => return Err(self.error(format!("invalid escape {:?}", other as char))),
                    }
                }
                // Multi-byte UTF-8: copy the raw bytes through (input is a
                // valid &str, so continuation bytes follow).
                c => {
                    let start = self.pos - 1;
                    let width = utf8_width(c);
                    self.pos = start + width;
                    if self.pos > self.bytes.len() {
                        return Err(self.error("truncated UTF-8 sequence"));
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| Error::new(format!("invalid UTF-8 in string at byte {start}")))?,
                    );
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex =
            std::str::from_utf8(&self.bytes[self.pos..self.pos + 4]).map_err(|_| self.error("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                b'+' | b'-' if is_float => self.pos += 1,
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number token");
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number {text:?}")))
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(Value::UInt(u))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Value::Int(i))
        } else {
            // Integer-looking token too large for 64 bits: fall back to float.
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number {text:?}")))
        }
    }
}

fn utf8_width(first_byte: u8) -> usize {
    match first_byte {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Value) -> Value {
        parse(&to_string(v)).expect("round trip parse")
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(-42),
            Value::UInt(u64::MAX),
            Value::Str("hello \"world\"\n\t\\ ∅ 🦀".into()),
        ] {
            assert_eq!(round_trip(&v), v);
        }
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for f in [
            0.0,
            -0.0,
            1.0,
            -1.5,
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            f64::EPSILON,
            5e-324, // smallest subnormal
            1e300,
            -2.2250738585072014e-308,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ] {
            let text = to_string(&f);
            let back: f64 = from_str(&text).expect("parse float");
            assert_eq!(back.to_bits(), f.to_bits(), "{f} encoded as {text}");
        }
        let nan: f64 = from_str(&to_string(&f64::NAN)).unwrap();
        assert!(nan.is_nan());
    }

    #[test]
    fn integral_floats_keep_their_fraction_marker() {
        assert_eq!(to_string(&2.0f64), "2.0");
        assert_eq!(to_string(&-0.0f64), "-0.0");
        let back: f64 = from_str("2.0").unwrap();
        assert_eq!(back, 2.0);
    }

    #[test]
    fn compound_values_round_trip() {
        let v = Value::Map(vec![
            ("empty_seq".into(), Value::Seq(vec![])),
            ("empty_map".into(), Value::Map(vec![])),
            (
                "nested".into(),
                Value::Seq(vec![
                    Value::Map(vec![("k".into(), Value::Float(0.25))]),
                    Value::Null,
                    Value::Seq(vec![Value::UInt(1), Value::Int(-2)]),
                ]),
            ),
        ]);
        assert_eq!(round_trip(&v), v);
        // Pretty printing parses back to the same tree.
        assert_eq!(parse(&to_string_pretty(&v)).unwrap(), v);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(parse(r#""Aé""#).unwrap(), Value::Str("Aé".into()));
        // Escaped surrogate pair for 🦀 (U+1F980), and the raw UTF-8 form.
        assert_eq!(parse(r#""\ud83e\udd80""#).unwrap(), Value::Str("🦀".into()));
        assert_eq!(parse(r#""🦀""#).unwrap(), Value::Str("🦀".into()));
        assert_eq!(parse(r#""é\n""#).unwrap(), Value::Str("é\n".into()));
        assert!(parse(r#""\ud83e""#).is_err(), "unpaired surrogate must fail");
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "[1 2]",
            "{\"a\" 1}",
            "{a: 1}",
            "nul",
            "tru",
            "01x",
            "\"abc",
            "[1] trailing",
        ] {
            assert!(parse(bad).is_err(), "accepted malformed input {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_fails_with_an_error_instead_of_overflowing() {
        // Within the limit: fine.
        let ok = format!("{}{}{}", "[".repeat(MAX_DEPTH), "1", "]".repeat(MAX_DEPTH));
        assert!(parse(&ok).is_ok());
        // A pathological document (e.g. a corrupt artifact) must fail cleanly.
        let bomb = "[".repeat(200_000);
        let err = parse(&bomb).unwrap_err();
        assert!(err.to_string().contains("maximum depth"), "{err}");
        let mixed = format!("{}{}", "{\"k\":".repeat(MAX_DEPTH + 1), "1");
        assert!(parse(&mixed).is_err());
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = parse(" {\n  \"a\" : [ 1 , 2 ] \t}\r\n").unwrap();
        assert_eq!(
            v,
            Value::Map(vec![("a".into(), Value::Seq(vec![Value::UInt(1), Value::UInt(2)]))])
        );
    }
}
