//! Gini impurity measures, including the paper's one-sided Gini index (Eq. 5–7).

/// Class counts of a pair subset, optionally weighted.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ClassCounts {
    /// (Weighted) number of equivalent pairs.
    pub matches: f64,
    /// (Weighted) number of inequivalent pairs.
    pub unmatches: f64,
}

impl ClassCounts {
    /// Creates counts.
    pub fn new(matches: f64, unmatches: f64) -> Self {
        Self { matches, unmatches }
    }

    /// Total (weighted) size.
    pub fn total(&self) -> f64 {
        self.matches + self.unmatches
    }

    /// Gini impurity `1 - t_M^2 - t_U^2` (Eq. 6).  Empty subsets have zero
    /// impurity.
    pub fn gini(&self) -> f64 {
        let n = self.total();
        if n <= 0.0 {
            return 0.0;
        }
        let tm = self.matches / n;
        let tu = self.unmatches / n;
        1.0 - tm * tm - tu * tu
    }

    /// Impurity with respect to the *majority* class: the fraction of
    /// instances not belonging to the dominant class.  This is the purity test
    /// used to qualify one-sided rules.
    pub fn minority_fraction(&self) -> f64 {
        let n = self.total();
        if n <= 0.0 {
            return 0.0;
        }
        self.matches.min(self.unmatches) / n
    }

    /// The dominant class: `true` when matches outnumber unmatches.
    pub fn majority_is_match(&self) -> bool {
        self.matches > self.unmatches
    }
}

/// Two-sided Gini index of a split (Eq. 5): the size-weighted average impurity
/// of the two subsets.
pub fn two_sided_gini(left: ClassCounts, right: ClassCounts) -> f64 {
    let n = left.total() + right.total();
    if n <= 0.0 {
        return 0.0;
    }
    (left.total() / n) * left.gini() + (right.total() / n) * right.gini()
}

/// One-sided Gini index of a split (Eq. 7):
/// `min( λ/|D_L| + (1−λ)·G(D_L),  λ/|D_R| + (1−λ)·G(D_R) )`.
///
/// A small `λ` (the paper suggests 0.2) prefers purity over size, so the best
/// split carves out one highly pure subset regardless of the other side.
pub fn one_sided_gini(left: ClassCounts, right: ClassCounts, lambda: f64) -> f64 {
    let side = |c: ClassCounts| {
        if c.total() <= 0.0 {
            f64::INFINITY
        } else {
            lambda / c.total() + (1.0 - lambda) * c.gini()
        }
    };
    side(left).min(side(right))
}

/// Which side of a split the one-sided Gini selects (`true` = left).
pub fn one_sided_prefers_left(left: ClassCounts, right: ClassCounts, lambda: f64) -> bool {
    let side = |c: ClassCounts| {
        if c.total() <= 0.0 {
            f64::INFINITY
        } else {
            lambda / c.total() + (1.0 - lambda) * c.gini()
        }
    };
    side(left) <= side(right)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gini_pure_and_balanced() {
        assert_eq!(ClassCounts::new(10.0, 0.0).gini(), 0.0);
        assert_eq!(ClassCounts::new(0.0, 10.0).gini(), 0.0);
        assert!((ClassCounts::new(5.0, 5.0).gini() - 0.5).abs() < 1e-12);
        assert_eq!(ClassCounts::default().gini(), 0.0);
    }

    #[test]
    fn minority_fraction_and_majority() {
        let c = ClassCounts::new(2.0, 8.0);
        assert!((c.minority_fraction() - 0.2).abs() < 1e-12);
        assert!(!c.majority_is_match());
        assert!(ClassCounts::new(9.0, 1.0).majority_is_match());
        assert_eq!(ClassCounts::default().minority_fraction(), 0.0);
    }

    #[test]
    fn two_sided_gini_weights_by_size() {
        // Left: pure (8 unmatches); right: balanced (1/1).
        let g = two_sided_gini(ClassCounts::new(0.0, 8.0), ClassCounts::new(1.0, 1.0));
        assert!((g - (0.8 * 0.0 + 0.2 * 0.5)).abs() < 1e-12);
        assert_eq!(two_sided_gini(ClassCounts::default(), ClassCounts::default()), 0.0);
    }

    #[test]
    fn one_sided_gini_prefers_a_pure_side() {
        let lambda = 0.2;
        // Split A: one side perfectly pure and large.
        let a = one_sided_gini(ClassCounts::new(0.0, 50.0), ClassCounts::new(25.0, 25.0), lambda);
        // Split B: both sides mixed.
        let b = one_sided_gini(ClassCounts::new(20.0, 30.0), ClassCounts::new(5.0, 45.0), lambda);
        assert!(a < b, "pure-side split should score lower: {a} vs {b}");
    }

    #[test]
    fn small_lambda_prefers_purity_over_size() {
        // Choice between a tiny pure subset and a big slightly-impure subset.
        let tiny_pure = ClassCounts::new(0.0, 6.0);
        let big_impure = ClassCounts::new(10.0, 90.0);
        let rest = ClassCounts::new(40.0, 40.0);
        let score_tiny = one_sided_gini(tiny_pure, rest, 0.2);
        let score_big = one_sided_gini(big_impure, rest, 0.2);
        assert!(score_tiny < score_big, "λ=0.2 should prefer the pure subset");
        // With a large λ the big subset wins despite impurity.
        let score_tiny_hi = one_sided_gini(tiny_pure, rest, 0.95);
        let score_big_hi = one_sided_gini(big_impure, rest, 0.95);
        assert!(score_big_hi < score_tiny_hi, "λ≈1 should prefer the larger subset");
    }

    #[test]
    fn preferred_side_detection() {
        assert!(one_sided_prefers_left(
            ClassCounts::new(0.0, 30.0),
            ClassCounts::new(10.0, 10.0),
            0.2
        ));
        assert!(!one_sided_prefers_left(
            ClassCounts::new(10.0, 10.0),
            ClassCounts::new(0.0, 30.0),
            0.2
        ));
    }

    #[test]
    fn empty_side_is_never_selected() {
        let g = one_sided_gini(ClassCounts::default(), ClassCounts::new(3.0, 3.0), 0.2);
        assert!(g.is_finite());
        assert!(!one_sided_prefers_left(
            ClassCounts::default(),
            ClassCounts::new(3.0, 3.0),
            0.2
        ));
    }
}
