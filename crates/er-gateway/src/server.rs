//! The gateway HTTP server: downstream request handling, consistent-hash
//! routing, tail hedging, shadow scoring, and the canary control plane.
//!
//! Downstream connections are thread-per-connection and blocking — the
//! gateway is the *client-facing* edge and its connection counts are the
//! fleet's, not one process's. Upstream I/O is the opposite: every backend
//! request funnels through one [`UpstreamPool`] driver thread on the
//! readiness loop, so a stalled backend occupies a parked nonblocking
//! socket, never a gateway thread.
//!
//! ## Routes
//!
//! | Method & path           | Purpose |
//! |-------------------------|---------|
//! | `POST /score`           | consistent-hash route (+hedge, +shadow) to a backend; body relayed bit-exactly |
//! | `GET /healthz`          | gateway liveness + healthy-backend count |
//! | `GET /gateway/stats`    | routing/hedging counters, per-backend health, canary status |
//! | `POST /reload`          | `{"path": ..}` — load candidate on canary backends, enter Shadow |
//! | `POST /canary/promote`  | advance the canary one rung (final rung promotes) |
//! | `POST /canary/rollback` | abandon the canary, restore baseline on canary backends |
//!
//! `/score` responses carry `X-Backend` (index that served), `X-Hedged`
//! (`1` when the hedge won the race) and the upstream's own headers
//! worth relaying (`X-Model-Version`, `X-Request-Id`).

use crate::canary::{Action, CanaryConfig, CanaryController, CanaryStatus};
use crate::health::{spawn_monitor, BackendHealth, HealthState};
use crate::ring::{percent_slot, HashRing};
use crate::upstream::{ResponseSlot, UpstreamPool, UpstreamResponse};
use serde::Serialize;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Largest downstream request head the gateway accepts.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Gateway tuning; every knob has an operational default.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Bind address (port 0 for ephemeral).
    pub listen: String,
    /// Backend `er-serve` addresses, in index order.
    pub backends: Vec<SocketAddr>,
    /// Indices (into `backends`) designated to hold canary artifacts. Must
    /// be a proper non-empty subset for the canary machinery to engage.
    pub canary_backends: Vec<usize>,
    /// Artifact path every backend is presumed to serve at boot; rollbacks
    /// restore it.
    pub baseline_artifact: String,
    /// Vnodes per backend on the hash ring.
    pub vnodes: usize,
    /// Hedge budget: a `/score` still unanswered after this long is
    /// duplicated to the next backend on the ring. `None` disables hedging.
    pub hedge_after: Option<Duration>,
    /// Total per-attempt upstream budget (connect + send + receive).
    pub upstream_timeout: Duration,
    /// Upstream TCP connect budget.
    pub connect_timeout: Duration,
    /// Background health-probe period.
    pub health_interval: Duration,
    /// Consecutive probe failures before a backend is ejected.
    pub eject_after: u32,
    /// Canary ladder tuning.
    pub canary: CanaryConfig,
    /// Largest accepted downstream request body.
    pub max_body_bytes: usize,
    /// Downstream socket read/write budget.
    pub io_timeout: Duration,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        Self {
            listen: "127.0.0.1:0".to_string(),
            backends: Vec::new(),
            canary_backends: Vec::new(),
            baseline_artifact: String::new(),
            vnodes: 128,
            hedge_after: Some(Duration::from_millis(30)),
            upstream_timeout: Duration::from_secs(10),
            connect_timeout: Duration::from_secs(2),
            health_interval: Duration::from_millis(500),
            eject_after: 3,
            canary: CanaryConfig::default(),
            max_body_bytes: 1 << 20,
            io_timeout: Duration::from_secs(30),
        }
    }
}

/// Monotonic gateway counters (snapshot via [`GatewayServer::stats`]).
#[derive(Debug, Default)]
struct Counters {
    requests: AtomicU64,
    responses_2xx: AtomicU64,
    responses_non_2xx: AtomicU64,
    hedges_launched: AtomicU64,
    hedges_won: AtomicU64,
    shadow_comparisons: AtomicU64,
    upstream_errors: AtomicU64,
}

/// Serializable `/gateway/stats` document.
#[derive(Debug, Clone, Serialize)]
pub struct GatewayStats {
    /// Downstream requests accepted (all routes).
    pub requests: u64,
    /// 2xx responses written downstream.
    pub responses_2xx: u64,
    /// Non-2xx responses written downstream.
    pub responses_non_2xx: u64,
    /// Hedge requests launched after the latency budget expired.
    pub hedges_launched: u64,
    /// Races the hedge won.
    pub hedges_won: u64,
    /// Shadow score comparisons recorded.
    pub shadow_comparisons: u64,
    /// Upstream attempts that errored (timeouts included).
    pub upstream_errors: u64,
    /// Requests served per backend index.
    pub served_by_backend: Vec<u64>,
    /// Health table, in backend index order.
    pub backends: Vec<BackendHealth>,
    /// Canary controller status.
    pub canary: CanaryStatus,
}

struct Shared {
    config: GatewayConfig,
    ring: HashRing,
    health: Arc<HealthState>,
    upstream: UpstreamPool,
    canary: CanaryController,
    counters: Counters,
    served_by_backend: Vec<AtomicU64>,
    /// Guards rollback/promotion reloads: only one control action at a time.
    action_inflight: AtomicBool,
    shutdown: AtomicBool,
}

/// A running gateway; dropping it (or calling [`Self::shutdown`]) stops the
/// accept loop, the health monitor and the upstream driver.
pub struct GatewayServer {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    health_thread: Option<std::thread::JoinHandle<()>>,
    shutdown_flag: Arc<AtomicBool>,
}

impl GatewayServer {
    /// Binds and starts serving. Probes every backend once before
    /// returning, so the first request already routes on real health.
    pub fn start(config: GatewayConfig) -> io::Result<Self> {
        if config.backends.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "at least one backend required",
            ));
        }
        if config.canary_backends.iter().any(|&i| i >= config.backends.len()) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "canary backend index out of range",
            ));
        }
        let listener = TcpListener::bind(&config.listen)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let health = Arc::new(HealthState::new(
            config.backends.clone(),
            config.eject_after,
            config.connect_timeout,
        ));
        health.probe_all();
        let upstream = UpstreamPool::new(config.connect_timeout)?;
        let canary = CanaryController::new(config.canary.clone(), config.baseline_artifact.clone());
        let shutdown_flag = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(Shared {
            served_by_backend: (0..config.backends.len()).map(|_| AtomicU64::new(0)).collect(),
            ring: HashRing::new(config.backends.len(), config.vnodes),
            health: Arc::clone(&health),
            upstream,
            canary,
            counters: Counters::default(),
            action_inflight: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            config,
        });
        let health_thread = spawn_monitor(health, shared.config.health_interval, Arc::clone(&shutdown_flag))?;
        let accept_thread = {
            let shared = Arc::clone(&shared);
            let shutdown = Arc::clone(&shutdown_flag);
            std::thread::Builder::new()
                .name("gw-accept".to_string())
                .spawn(move || accept_loop(listener, shared, shutdown))?
        };
        Ok(Self {
            shared,
            local_addr,
            accept_thread: Some(accept_thread),
            health_thread: Some(health_thread),
            shutdown_flag,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Counter + health + canary snapshot.
    pub fn stats(&self) -> GatewayStats {
        stats_snapshot(&self.shared)
    }

    /// Stops accepting, joins the helper threads. In-flight downstream
    /// connections finish their current request.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.shutdown_flag.swap(true, Ordering::SeqCst) {
            return;
        }
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.health_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for GatewayServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn stats_snapshot(shared: &Shared) -> GatewayStats {
    GatewayStats {
        requests: shared.counters.requests.load(Ordering::Relaxed),
        responses_2xx: shared.counters.responses_2xx.load(Ordering::Relaxed),
        responses_non_2xx: shared.counters.responses_non_2xx.load(Ordering::Relaxed),
        hedges_launched: shared.counters.hedges_launched.load(Ordering::Relaxed),
        hedges_won: shared.counters.hedges_won.load(Ordering::Relaxed),
        shadow_comparisons: shared.counters.shadow_comparisons.load(Ordering::Relaxed),
        upstream_errors: shared.counters.upstream_errors.load(Ordering::Relaxed),
        served_by_backend: shared
            .served_by_backend
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect(),
        backends: shared.health.snapshot(),
        canary: shared.canary.status(),
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>, shutdown: Arc<AtomicBool>) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(&shared);
                let _ = std::thread::Builder::new()
                    .name("gw-conn".to_string())
                    .spawn(move || handle_connection(stream, &shared));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

// ---------------------------------------------------------------------------
// Downstream HTTP parsing (same conformance rules as the backend parser).

struct DownstreamRequest {
    method: String,
    path: String,
    body: Vec<u8>,
    close: bool,
}

enum ReadOutcome {
    Request(DownstreamRequest),
    /// Peer closed cleanly between requests.
    Closed,
    /// Protocol error: answer with this status/message and close.
    Bad(u16, String),
    /// Socket error mid-request: just close.
    Gone,
}

/// Reads one request off a blocking downstream socket. Applies the same
/// conformance rules as the backend parser: the RFC 7230 §3.3.3
/// conflicting-`Content-Length` rejection, a 400 for any
/// `Transfer-Encoding` (the gateway frames bodies by `Content-Length`
/// only — silently ignoring chunked framing would re-parse the chunk bytes
/// as smuggled follow-up requests), OR-combined `Connection` token lists,
/// and HTTP/1.0 default-close semantics. Answers `Expect: 100-continue`
/// with the interim response and *strips* that header from what is
/// forwarded — the gateway fields the expectation itself rather than
/// proxying the stall upstream.
fn read_request(stream: &mut TcpStream, buffer: &mut Vec<u8>, max_body: usize) -> ReadOutcome {
    let mut chunk = [0u8; 4096];
    let mut continue_sent = false;
    loop {
        // Head complete?
        if let Some(head_end) = buffer.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = match std::str::from_utf8(&buffer[..head_end]) {
                Ok(head) => head,
                Err(_) => return ReadOutcome::Bad(400, "request head is not UTF-8".to_string()),
            };
            let mut lines = head.split("\r\n");
            let request_line = lines.next().unwrap_or_default();
            let mut parts = request_line.split_whitespace();
            let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next()) else {
                return ReadOutcome::Bad(400, format!("malformed request line {request_line:?}"));
            };
            if !version.starts_with("HTTP/1.") {
                return ReadOutcome::Bad(400, format!("unsupported protocol {version}"));
            }
            let http10 = version == "HTTP/1.0";
            let method = method.to_string();
            let path = path.to_string();
            let mut content_length: Option<usize> = None;
            let mut close = false;
            let mut keep_alive = false;
            let mut expect_continue = false;
            for line in lines {
                let Some((name, value)) = line.split_once(':') else {
                    continue;
                };
                let value = value.trim();
                match name.trim().to_ascii_lowercase().as_str() {
                    "content-length" => {
                        let Ok(parsed) = value.parse::<usize>() else {
                            return ReadOutcome::Bad(400, format!("unparseable Content-Length {value:?}"));
                        };
                        if content_length.is_some_and(|prev| prev != parsed) {
                            return ReadOutcome::Bad(
                                400,
                                "conflicting Content-Length headers make the request framing ambiguous".to_string(),
                            );
                        }
                        content_length = Some(parsed);
                    }
                    "transfer-encoding" => {
                        return ReadOutcome::Bad(400, "chunked bodies are not supported; send Content-Length".to_string());
                    }
                    "connection" => {
                        close = close || value.split(',').any(|t| t.trim().eq_ignore_ascii_case("close"));
                        keep_alive =
                            keep_alive || value.split(',').any(|t| t.trim().eq_ignore_ascii_case("keep-alive"));
                    }
                    "expect" => {
                        expect_continue =
                            expect_continue || value.split(',').any(|t| t.trim().eq_ignore_ascii_case("100-continue"));
                    }
                    _ => {}
                }
            }
            // HTTP/1.0 defaults to close; an explicit `close` token always
            // wins over `keep-alive` whatever the version.
            let close = close || (http10 && !keep_alive);
            let content_length = content_length.unwrap_or(0);
            if content_length > max_body {
                return ReadOutcome::Bad(413, format!("request body of {content_length} bytes is too large"));
            }
            let total = head_end + 4 + content_length;
            if buffer.len() >= total {
                let body = buffer[head_end + 4..total].to_vec();
                buffer.drain(..total);
                return ReadOutcome::Request(DownstreamRequest {
                    method,
                    path,
                    body,
                    close,
                });
            }
            // Body incomplete: honor the expectation once, then keep
            // reading.
            if expect_continue && !continue_sent {
                continue_sent = true;
                if stream.write_all(b"HTTP/1.1 100 Continue\r\n\r\n").is_err() {
                    return ReadOutcome::Gone;
                }
            }
        } else if buffer.len() > MAX_HEAD_BYTES {
            return ReadOutcome::Bad(431, "request head too large".to_string());
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                return if buffer.is_empty() {
                    ReadOutcome::Closed
                } else {
                    ReadOutcome::Bad(400, "connection closed mid-request".to_string())
                }
            }
            Ok(n) => buffer.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return ReadOutcome::Gone,
        }
    }
}

struct Reply {
    status: u16,
    body: Vec<u8>,
    extra_headers: Vec<(String, String)>,
}

impl Reply {
    fn json(status: u16, body: String) -> Self {
        Self {
            status,
            body: body.into_bytes(),
            extra_headers: Vec::new(),
        }
    }

    fn error(status: u16, message: &str) -> Self {
        Self::json(status, format!("{{\"error\": {}}}", serde::json::to_string(&message)))
    }
}

fn status_reason(status: u16) -> &'static str {
    match status {
        100 => "Continue",
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Response",
    }
}

fn write_reply(stream: &mut TcpStream, reply: &Reply, close: bool) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n",
        reply.status,
        status_reason(reply.status),
        reply.body.len()
    );
    for (name, value) in &reply.extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    if close {
        head.push_str("Connection: close\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&reply.body)
}

fn handle_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.config.io_timeout));
    let _ = stream.set_write_timeout(Some(shared.config.io_timeout));
    let mut buffer = Vec::new();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let request = match read_request(&mut stream, &mut buffer, shared.config.max_body_bytes) {
            ReadOutcome::Request(request) => request,
            ReadOutcome::Closed | ReadOutcome::Gone => return,
            ReadOutcome::Bad(status, message) => {
                shared.counters.requests.fetch_add(1, Ordering::Relaxed);
                shared.counters.responses_non_2xx.fetch_add(1, Ordering::Relaxed);
                let _ = write_reply(&mut stream, &Reply::error(status, &message), true);
                return;
            }
        };
        shared.counters.requests.fetch_add(1, Ordering::Relaxed);
        let (reply, shadow) = route_request(shared, &request);
        if reply.status < 300 {
            shared.counters.responses_2xx.fetch_add(1, Ordering::Relaxed);
        } else {
            shared.counters.responses_non_2xx.fetch_add(1, Ordering::Relaxed);
        }
        if write_reply(&mut stream, &reply, request.close).is_err() {
            return;
        }
        // Shadow comparison runs after the response is on the wire: the
        // client never waits on the canary.
        if let Some(job) = shadow {
            job.run(shared);
        }
        if request.close {
            return;
        }
    }
}

fn route_request(shared: &Arc<Shared>, request: &DownstreamRequest) -> (Reply, Option<ShadowJob>) {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/score") => handle_score(shared, request),
        ("GET", "/healthz") => {
            let healthy = shared.health.healthy_count();
            let status = if healthy > 0 { 200 } else { 503 };
            (
                Reply::json(
                    status,
                    format!(
                        "{{\"status\": {}, \"healthy_backends\": {healthy}, \"backends\": {}}}",
                        serde::json::to_string(if healthy > 0 { "ok" } else { "no-healthy-backends" }),
                        shared.config.backends.len()
                    ),
                ),
                None,
            )
        }
        ("GET", "/gateway/stats") => (Reply::json(200, serde::json::to_string(&stats_snapshot(shared))), None),
        ("POST", "/reload") => (handle_reload(shared, request), None),
        ("POST", "/canary/promote") => (handle_promote(shared), None),
        ("POST", "/canary/rollback") => (handle_manual_rollback(shared), None),
        (_, "/score" | "/healthz" | "/gateway/stats" | "/reload" | "/canary/promote" | "/canary/rollback") => {
            (Reply::error(405, "method not allowed"), None)
        }
        _ => (Reply::error(404, &format!("no route for {}", request.path)), None),
    }
}

// ---------------------------------------------------------------------------
// /score: routing, hedging, shadow scoring.

/// A deferred shadow comparison: duplicate the request to the other version
/// set, compare score vectors, feed the verdict to the canary controller.
struct ShadowJob {
    pair_id: u64,
    request_bytes: Vec<u8>,
    served_scores: Vec<f64>,
    /// The served response came from the canary set (so the shadow goes to
    /// baseline and the comparison arguments swap).
    served_canary: bool,
}

impl ShadowJob {
    fn run(self, shared: &Arc<Shared>) {
        let target_set_canary = !self.served_canary;
        let Some(backend) = pick_backend(shared, self.pair_id, target_set_canary) else {
            return;
        };
        let slot = shared.upstream.submit(
            shared.config.backends[backend],
            self.request_bytes,
            shared.config.upstream_timeout,
        );
        let Some(Ok(response)) = slot.take_timeout(shared.config.upstream_timeout) else {
            shared.counters.upstream_errors.fetch_add(1, Ordering::Relaxed);
            return;
        };
        if response.status != 200 {
            return;
        }
        let Ok((_, other_scores)) = er_serve::parse_score_response(&String::from_utf8_lossy(&response.body)) else {
            return;
        };
        shared
            .counters
            .shadow_comparisons
            .fetch_add(self.served_scores.len().max(1) as u64, Ordering::Relaxed);
        let (baseline, canary): (&[f64], &[f64]) = if self.served_canary {
            (&other_scores, &self.served_scores)
        } else {
            (&self.served_scores, &other_scores)
        };
        let action = shared.canary.record_comparison(baseline, canary);
        run_action(shared, action);
    }
}

/// Is `backend` in the canary set?
fn in_canary_set(shared: &Shared, backend: usize) -> bool {
    shared.config.canary_backends.contains(&backend)
}

/// Routes a pair id within one version set (canary or baseline), healthy
/// backends only. When the gateway is Stable the set restriction is lifted
/// — every backend serves the same artifact.
fn pick_backend(shared: &Shared, pair_id: u64, canary_set: bool) -> Option<usize> {
    let stable = shared.canary.status().phase == "stable";
    shared.ring.route(pair_id, |backend| {
        shared.health.is_healthy(backend) && (stable || in_canary_set(shared, backend) == canary_set)
    })
}

fn hedge_target(shared: &Shared, pair_id: u64, primary: usize, canary_set: bool) -> Option<usize> {
    let stable = shared.canary.status().phase == "stable";
    shared.ring.route_excluding(pair_id, primary, |backend| {
        shared.health.is_healthy(backend) && (stable || in_canary_set(shared, backend) == canary_set)
    })
}

/// Extracts the routing key from a `/score` body: the `pair_id` of a single
/// request object, or of the first element of a batch.
fn extract_pair_id(body: &[u8]) -> Option<u64> {
    let text = std::str::from_utf8(body).ok()?;
    let value = serde::json::parse(text).ok()?;
    let object = match value.as_seq() {
        Some(items) => items.first()?,
        None => &value,
    };
    serde::from_value(object.get("pair_id")?).ok()
}

/// Builds the upstream wire request: fresh head (no downstream headers are
/// forwarded — notably not `Expect`), identical body bytes.
fn upstream_request(body: &[u8]) -> Vec<u8> {
    let mut request = format!(
        "POST /score HTTP/1.1\r\nHost: er-gateway\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )
    .into_bytes();
    request.extend_from_slice(body);
    request
}

fn handle_score(shared: &Shared, request: &DownstreamRequest) -> (Reply, Option<ShadowJob>) {
    let Some(pair_id) = extract_pair_id(&request.body) else {
        return (
            Reply::error(400, "body must be a score request (or batch) with a pair_id"),
            None,
        );
    };
    let plan = shared.canary.plan(percent_slot(pair_id));
    let Some(primary) = pick_backend(shared, pair_id, plan.serve_canary) else {
        return (Reply::error(503, "no healthy backend for this request"), None);
    };
    let wire = upstream_request(&request.body);
    let deadline = Instant::now() + shared.config.upstream_timeout;
    let primary_slot = shared.upstream.submit(
        shared.config.backends[primary],
        wire.clone(),
        shared.config.upstream_timeout,
    );

    let mut served_backend = primary;
    let mut hedged_won = false;
    let outcome: Option<io::Result<UpstreamResponse>> = match shared.config.hedge_after {
        Some(budget) => {
            match primary_slot.take_timeout(budget.min(shared.config.upstream_timeout)) {
                Some(result) => Some(result),
                None => {
                    // The primary is past its latency budget: race a
                    // duplicate against it on the next ring backend.
                    match hedge_target(shared, pair_id, primary, plan.serve_canary) {
                        None => primary_slot.take_timeout(deadline.saturating_duration_since(Instant::now())),
                        Some(secondary) => {
                            shared.counters.hedges_launched.fetch_add(1, Ordering::Relaxed);
                            let hedge_slot = shared.upstream.submit(
                                shared.config.backends[secondary],
                                wire.clone(),
                                deadline.saturating_duration_since(Instant::now()),
                            );
                            race(
                                &primary_slot,
                                &hedge_slot,
                                deadline,
                                &mut served_backend,
                                secondary,
                                &mut hedged_won,
                            )
                        }
                    }
                }
            }
        }
        None => primary_slot.take_timeout(shared.config.upstream_timeout),
    };

    let response = match outcome {
        Some(Ok(response)) => response,
        Some(Err(e)) => {
            shared.counters.upstream_errors.fetch_add(1, Ordering::Relaxed);
            return (Reply::error(502, &format!("upstream failed: {e}")), None);
        }
        None => {
            shared.counters.upstream_errors.fetch_add(1, Ordering::Relaxed);
            return (Reply::error(504, "upstream deadline expired"), None);
        }
    };
    if hedged_won {
        shared.counters.hedges_won.fetch_add(1, Ordering::Relaxed);
    }
    shared.served_by_backend[served_backend].fetch_add(1, Ordering::Relaxed);

    // Relay the backend body byte-for-byte (bit-exact scores), plus the
    // provenance headers worth keeping.
    let mut extra_headers = vec![
        ("X-Backend".to_string(), served_backend.to_string()),
        ("X-Hedged".to_string(), if hedged_won { "1" } else { "0" }.to_string()),
    ];
    for name in ["x-model-version", "x-request-id"] {
        if let Some(value) = response.header(name) {
            extra_headers.push((name.to_string(), value.to_string()));
        }
    }
    let shadow = if plan.shadow_compare && response.status == 200 {
        er_serve::parse_score_response(&String::from_utf8_lossy(&response.body))
            .ok()
            .map(|(_, scores)| ShadowJob {
                pair_id,
                request_bytes: wire,
                served_scores: scores,
                served_canary: plan.serve_canary,
            })
    } else {
        None
    };
    (
        Reply {
            status: response.status,
            body: response.body,
            extra_headers,
        },
        shadow,
    )
}

/// Waits for whichever of two slots completes first (polling in small
/// slices — only the hedged path pays this). Prefers a *successful* early
/// completion; an error from one side keeps waiting on the other.
fn race(
    primary: &ResponseSlot,
    hedge: &ResponseSlot,
    deadline: Instant,
    served_backend: &mut usize,
    hedge_backend: usize,
    hedged_won: &mut bool,
) -> Option<io::Result<UpstreamResponse>> {
    let slice = Duration::from_millis(2);
    let mut primary_error: Option<io::Error> = None;
    let mut hedge_error: Option<io::Error> = None;
    loop {
        if primary_error.is_none() {
            if let Some(result) = primary.take_timeout(slice) {
                match result {
                    Ok(response) => {
                        hedge.cancel();
                        return Some(Ok(response));
                    }
                    Err(e) => primary_error = Some(e),
                }
            }
        }
        if hedge_error.is_none() {
            if let Some(result) = hedge.take_timeout(slice) {
                match result {
                    Ok(response) => {
                        primary.cancel();
                        *served_backend = hedge_backend;
                        *hedged_won = true;
                        return Some(Ok(response));
                    }
                    Err(e) => hedge_error = Some(e),
                }
            }
        }
        if let (Some(primary_e), Some(_)) = (&primary_error, &hedge_error) {
            // Both sides failed: report the primary's error.
            return Some(Err(io::Error::new(primary_e.kind(), primary_e.to_string())));
        }
        if Instant::now() >= deadline {
            primary.cancel();
            hedge.cancel();
            return None;
        }
    }
}

// ---------------------------------------------------------------------------
// Canary control plane.

/// Blocking `POST /reload {"path": ..}` against one backend.
fn reload_backend(shared: &Shared, backend: usize, path: &str) -> Result<(), String> {
    let addr = shared.config.backends[backend];
    let mut stream = TcpStream::connect_timeout(&addr, shared.config.connect_timeout)
        .map_err(|e| format!("backend {backend}: connect: {e}"))?;
    let _ = stream.set_read_timeout(Some(shared.config.upstream_timeout));
    let _ = stream.set_write_timeout(Some(shared.config.upstream_timeout));
    let body = format!("{{\"path\": {}}}", serde::json::to_string(&path));
    let response = er_serve::http_roundtrip(&mut stream, "POST", "/reload", Some(&body))
        .map_err(|e| format!("backend {backend}: reload: {e}"))?;
    if response.status != 200 {
        return Err(format!(
            "backend {backend}: reload returned {}: {}",
            response.status, response.body
        ));
    }
    Ok(())
}

/// Executes a canary [`Action`] on a dedicated thread — the reload fan-out
/// can take up to `backends × upstream_timeout`, and the caller is either a
/// downstream connection thread (a shadow verdict) or a control request;
/// neither may stall behind canary side effects. One action at a time; the
/// `action_inflight` CAS drops duplicates (the controller will re-emit the
/// verdict on the next comparison if it still stands).
fn run_action(shared: &Arc<Shared>, action: Action) {
    let targets_and_done: Option<(Vec<usize>, bool, String)> = match action {
        Action::None => None,
        Action::RollbackCanaries { baseline_path } => {
            Some((shared.config.canary_backends.clone(), false, baseline_path))
        }
        Action::PromoteBaselines { candidate_path } => {
            let baselines: Vec<usize> = (0..shared.config.backends.len())
                .filter(|b| !in_canary_set(shared, *b))
                .collect();
            Some((baselines, true, candidate_path))
        }
    };
    let Some((targets, is_promotion, path)) = targets_and_done else {
        return;
    };
    if shared
        .action_inflight
        .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
        .is_err()
    {
        return;
    }
    let worker = Arc::clone(shared);
    let spawned = std::thread::Builder::new()
        .name("gw-canary-action".to_string())
        .spawn(move || {
            for backend in targets {
                if let Err(e) = reload_backend(&worker, backend, &path) {
                    eprintln!("er-gateway: canary action reload failed: {e}");
                }
            }
            // Refresh digests *before* the controller flips phase: anyone
            // who observes the promotion/rollback counter sees converged
            // digests in the same stats snapshot.
            worker.health.probe_all();
            if is_promotion {
                worker.canary.promoted();
            } else {
                worker.canary.rolled_back();
            }
            worker.action_inflight.store(false, Ordering::SeqCst);
        });
    if spawned.is_err() {
        // Could not spawn: release the guard; the verdict re-fires on the
        // next comparison.
        shared.action_inflight.store(false, Ordering::SeqCst);
        eprintln!("er-gateway: cannot spawn canary action thread");
    }
}

fn handle_reload(shared: &Arc<Shared>, request: &DownstreamRequest) -> Reply {
    if shared.config.canary_backends.is_empty() || shared.config.canary_backends.len() >= shared.config.backends.len() {
        return Reply::error(
            503,
            "canary promotion needs a proper non-empty canary backend subset (--canary)",
        );
    }
    let Ok(text) = std::str::from_utf8(&request.body) else {
        return Reply::error(400, "reload body is not UTF-8");
    };
    let path: String = match serde::json::parse(text)
        .ok()
        .and_then(|v| v.get("path").and_then(|p| serde::from_value(p).ok()))
    {
        Some(path) => path,
        None => return Reply::error(400, "reload body must be {\"path\": \"artifact.json\"}"),
    };
    // Reserve the canary slot (phase → Loading): the duplicate-canary guard
    // engages now, but no shadow comparison counts until every canary
    // backend actually holds the candidate — otherwise the ladder would
    // advance on baseline-vs-baseline zero-divergence samples.
    if let Err(message) = shared.canary.begin(path.clone()) {
        return Reply::error(409, &message);
    }
    // Load the candidate onto every canary backend; any failure aborts the
    // canary before it sees traffic.
    for &backend in &shared.config.canary_backends {
        if let Err(message) = reload_backend(shared, backend, &path) {
            // Best-effort restore, then report.
            let baseline = shared.canary.baseline_path();
            for &b in &shared.config.canary_backends {
                let _ = reload_backend(shared, b, &baseline);
            }
            shared.canary.rolled_back();
            return Reply::error(502, &format!("canary load failed, rolled back: {message}"));
        }
    }
    shared.health.probe_all();
    // Every canary backend holds the candidate: comparisons may begin.
    shared.canary.loaded();
    Reply::json(
        200,
        format!(
            "{{\"canary\": \"shadow\", \"candidate\": {}, \"canary_backends\": {}}}",
            serde::json::to_string(&path),
            serde::json::to_string(&shared.config.canary_backends)
        ),
    )
}

fn handle_promote(shared: &Arc<Shared>) -> Reply {
    match shared.canary.advance() {
        Err(message) => Reply::error(409, &message),
        Ok(action) => {
            let promoting = matches!(action, Action::PromoteBaselines { .. });
            run_action(shared, action);
            Reply::json(
                200,
                serde::json::to_string(&PromoteResponse {
                    status: if promoting { "promoted" } else { "advanced" },
                    canary: shared.canary.status(),
                }),
            )
        }
    }
}

fn handle_manual_rollback(shared: &Arc<Shared>) -> Reply {
    match shared.canary.rollback() {
        Err(message) => Reply::error(409, &message),
        Ok(action) => {
            run_action(shared, action);
            Reply::json(
                200,
                serde::json::to_string(&PromoteResponse {
                    status: "rolled-back",
                    canary: shared.canary.status(),
                }),
            )
        }
    }
}

#[derive(Serialize)]
struct PromoteResponse {
    status: &'static str,
    canary: CanaryStatus,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_id_extraction_handles_objects_and_batches() {
        assert_eq!(extract_pair_id(br#"{"pair_id": 42, "metric_row": []}"#), Some(42));
        assert_eq!(extract_pair_id(br#"[{"pair_id": 7}, {"pair_id": 9}]"#), Some(7));
        assert_eq!(extract_pair_id(b"[]"), None);
        assert_eq!(extract_pair_id(b"{\"x\": 1}"), None);
        assert_eq!(extract_pair_id(b"not json"), None);
    }

    #[test]
    fn upstream_request_never_forwards_expect() {
        let wire = upstream_request(b"{\"pair_id\": 1}");
        let text = String::from_utf8(wire).expect("utf8");
        assert!(!text.to_ascii_lowercase().contains("expect"), "{text}");
        assert!(text.starts_with("POST /score HTTP/1.1\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{\"pair_id\": 1}"), "{text}");
    }
}
