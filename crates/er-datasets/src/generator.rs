//! Generic machinery for generating dirty-duplicate ER benchmarks.
//!
//! A benchmark is built in four steps:
//!
//! 1. generate *clean entities* for a domain (papers, products, songs);
//! 2. optionally derive *hard siblings* — distinct entities that are very
//!    similar to an existing one (a journal version of a paper, the next model
//!    of a camera) which produce hard negative pairs;
//! 3. materialize one record per entity into the left table and, for a subset
//!    of the entities, one record into the right table (or extra records into
//!    the same table for deduplication workloads), each with its own
//!    [`DirtinessProfile`];
//! 4. run token blocking and assemble a candidate-pair [`Workload`] with a
//!    target size and match rate (mirroring Table 2 of the paper).

use crate::blocking::token_blocking_pairs;
use crate::perturb::DirtinessProfile;
use er_base::rng::substream;
use er_base::{AttrValue, Label, Pair, PairId, RecordId, Schema, Table, Workload};
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashSet;
use std::sync::Arc;

/// A clean (canonical) entity: the ground truth record before dirtying.
#[derive(Debug, Clone)]
pub struct CleanEntity {
    /// Globally unique entity identifier — records derived from the same
    /// entity are equivalent.
    pub entity_id: u64,
    /// Canonical attribute values, aligned with the domain schema.
    pub values: Vec<AttrValue>,
}

/// A domain (bibliographic, product, song) that knows how to generate clean
/// entities, hard siblings and dirty record views.
pub trait Domain {
    /// Attribute schema of the domain.
    fn schema(&self) -> Schema;

    /// Generates a clean entity with the given id.
    fn generate_entity<R: Rng + ?Sized>(&self, rng: &mut R, entity_id: u64) -> CleanEntity;

    /// Generates a *hard sibling*: a distinct entity that closely resembles
    /// `base` (same brand and category but a different model, a re-publication
    /// with a different year, a cover version of a song by another artist).
    fn generate_sibling<R: Rng + ?Sized>(&self, rng: &mut R, base: &CleanEntity, entity_id: u64) -> CleanEntity;

    /// Derives a dirty record view of an entity under a dirtiness profile.
    fn derive_record<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        entity: &CleanEntity,
        profile: &DirtinessProfile,
    ) -> Vec<AttrValue>;

    /// Indices of the attributes used as blocking keys.
    fn blocking_attrs(&self) -> Vec<usize>;
}

/// Configuration of one synthetic benchmark.
#[derive(Debug, Clone)]
pub struct DatasetConfig {
    /// Workload name (e.g. `"DS"`).
    pub name: String,
    /// Number of base entities that appear in the left table.
    pub n_entities: usize,
    /// Fraction of base entities that also appear in the right table (and thus
    /// produce equivalent pairs).
    pub duplicate_rate: f64,
    /// Fraction of base entities that spawn a hard sibling entity.
    pub sibling_rate: f64,
    /// Dirtiness of the left table.
    pub left_profile: DirtinessProfile,
    /// Dirtiness of the right table.
    pub right_profile: DirtinessProfile,
    /// Desired number of candidate pairs after blocking/subsampling.
    pub target_pairs: usize,
    /// Desired fraction of equivalent pairs among the candidates.
    pub target_match_rate: f64,
    /// Whether this is a single-table deduplication workload (e.g. Songs).
    pub dedup: bool,
    /// Random seed.
    pub seed: u64,
}

impl DatasetConfig {
    /// Reasonable defaults for a small test workload.
    pub fn small(name: &str) -> Self {
        DatasetConfig {
            name: name.to_owned(),
            n_entities: 300,
            duplicate_rate: 0.6,
            sibling_rate: 0.3,
            left_profile: DirtinessProfile::LIGHT,
            right_profile: DirtinessProfile::MODERATE,
            target_pairs: 2000,
            target_match_rate: 0.10,
            dedup: false,
            seed: 7,
        }
    }
}

/// A fully generated benchmark: the tables plus the candidate-pair workload.
#[derive(Debug, Clone)]
pub struct GeneratedDataset {
    /// The left (or only, for dedup) table.
    pub left: Table,
    /// The right table (same as left for dedup workloads).
    pub right: Table,
    /// Entity id of every left record, aligned with `left.records()`.
    pub left_entities: Vec<u64>,
    /// Entity id of every right record, aligned with `right.records()`.
    pub right_entities: Vec<u64>,
    /// The candidate-pair workload with ground-truth labels.
    pub workload: Workload,
}

impl GeneratedDataset {
    /// Convenience accessor for the workload name.
    pub fn name(&self) -> &str {
        &self.workload.name
    }
}

/// Generates a benchmark for a domain under a configuration.
pub fn generate<D: Domain>(domain: &D, config: &DatasetConfig) -> GeneratedDataset {
    let schema = Arc::new(domain.schema());
    let mut rng_entities = substream(config.seed, 1);
    let mut rng_records = substream(config.seed, 2);
    let mut rng_pairs = substream(config.seed, 3);

    // 1. Clean entities + hard siblings.
    let mut entities: Vec<CleanEntity> = Vec::with_capacity(config.n_entities * 2);
    let mut next_id = 0u64;
    for _ in 0..config.n_entities {
        let e = domain.generate_entity(&mut rng_entities, next_id);
        next_id += 1;
        let make_sibling = rng_entities.gen_bool(config.sibling_rate);
        if make_sibling {
            let sib = domain.generate_sibling(&mut rng_entities, &e, next_id);
            next_id += 1;
            entities.push(e);
            entities.push(sib);
        } else {
            entities.push(e);
        }
    }

    // 2. Materialize records.
    let mut left = Table::with_capacity(format!("{}-left", config.name), (*schema).clone(), entities.len());
    let mut right = Table::with_capacity(format!("{}-right", config.name), (*schema).clone(), entities.len());
    let mut left_entities = Vec::with_capacity(entities.len());
    let mut right_entities = Vec::with_capacity(entities.len());

    if config.dedup {
        // Single logical table: we still fill `left` and `right` with the same
        // records so downstream code can treat both workload styles uniformly.
        for e in &entities {
            let n_copies = if rng_records.gen_bool(config.duplicate_rate) {
                2
            } else {
                1
            };
            for c in 0..n_copies {
                let profile = if c == 0 {
                    &config.left_profile
                } else {
                    &config.right_profile
                };
                let values = domain.derive_record(&mut rng_records, e, profile);
                left.push(values.clone());
                left_entities.push(e.entity_id);
                right.push(values);
                right_entities.push(e.entity_id);
            }
        }
    } else {
        for e in &entities {
            let values = domain.derive_record(&mut rng_records, e, &config.left_profile);
            left.push(values);
            left_entities.push(e.entity_id);
            if rng_records.gen_bool(config.duplicate_rate) {
                let values = domain.derive_record(&mut rng_records, e, &config.right_profile);
                right.push(values);
                right_entities.push(e.entity_id);
            }
        }
        // Add some right-only entities so the right table also has records
        // without a left counterpart (as in real benchmarks).
        let extra = (config.n_entities as f64 * 0.3) as usize;
        for _ in 0..extra {
            let e = domain.generate_entity(&mut rng_entities, next_id);
            next_id += 1;
            let values = domain.derive_record(&mut rng_records, &e, &config.right_profile);
            right.push(values);
            right_entities.push(e.entity_id);
        }
    }

    // 3. Candidate pairs: all matches plus blocked non-matches.
    let workload = build_workload(
        config,
        Arc::clone(&schema),
        &left,
        &right,
        &left_entities,
        &right_entities,
        domain.blocking_attrs(),
        &mut rng_pairs,
    );

    GeneratedDataset {
        left,
        right,
        left_entities,
        right_entities,
        workload,
    }
}

/// Assembles the candidate-pair workload with the target size and match rate.
#[allow(clippy::too_many_arguments)]
fn build_workload<R: Rng + ?Sized>(
    config: &DatasetConfig,
    schema: Arc<Schema>,
    left: &Table,
    right: &Table,
    left_entities: &[u64],
    right_entities: &[u64],
    blocking_attrs: Vec<usize>,
    rng: &mut R,
) -> Workload {
    let dedup = config.dedup;

    // All equivalent pairs (cross product of views of the same entity).
    let mut match_pairs: Vec<(u32, u32)> = Vec::new();
    for (i, &el) in left_entities.iter().enumerate() {
        for (j, &er) in right_entities.iter().enumerate() {
            if dedup && j <= i {
                continue; // avoid self pairs and double counting within one table
            }
            if el == er {
                match_pairs.push((i as u32, j as u32));
            }
        }
    }

    // Candidate non-matches from token blocking.
    let blocked = token_blocking_pairs(left, right, &blocking_attrs, dedup);
    let match_set: HashSet<(u32, u32)> = match_pairs.iter().copied().collect();
    let mut blocked_nonmatches: Vec<(u32, u32)> = blocked
        .into_iter()
        .filter(|idx| !match_set.contains(idx) && left_entities[idx.0 as usize] != right_entities[idx.1 as usize])
        .collect();

    // Determine final composition.
    let target_matches = ((config.target_pairs as f64) * config.target_match_rate).round() as usize;
    let n_matches = match_pairs.len().min(target_matches.max(1));
    let n_nonmatches = config.target_pairs.saturating_sub(n_matches);

    match_pairs.shuffle(rng);
    match_pairs.truncate(n_matches);

    // Prefer *hard* non-matches: rank blocked candidates by token overlap of
    // their blocking attributes so that near-duplicates of distinct entities
    // (sibling products, follow-up papers) dominate the negative class, as
    // they do after blocking in the real benchmarks.
    let similarity_proxy = |&(i, j): &(u32, u32)| -> f64 {
        let l = left.record(RecordId(i));
        let r = right.record(RecordId(j));
        let mut text_l = String::new();
        let mut text_r = String::new();
        for &a in &blocking_attrs {
            if let Some(s) = l.values[a].as_str() {
                text_l.push_str(s);
                text_l.push(' ');
            }
            if let Some(s) = r.values[a].as_str() {
                text_r.push_str(s);
                text_r.push(' ');
            }
        }
        er_similarity::token_sim::jaccard(
            &er_similarity::tokenize::tokens(&text_l),
            &er_similarity::tokenize::tokens(&text_r),
        )
    };
    let mut scored: Vec<((u32, u32), f64)> = blocked_nonmatches
        .drain(..)
        .map(|p| (p, similarity_proxy(&p)))
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));

    // Two thirds of the negatives come from the hardest candidates, the rest is
    // a random sample of the remaining blocked pairs.
    let n_hard = (n_nonmatches * 2 / 3).min(scored.len());
    let mut nonmatch_pairs: Vec<(u32, u32)> = scored[..n_hard].iter().map(|(p, _)| *p).collect();
    let mut tail: Vec<(u32, u32)> = scored[n_hard..].iter().map(|(p, _)| *p).collect();
    tail.shuffle(rng);
    nonmatch_pairs.extend(tail.into_iter().take(n_nonmatches - n_hard));

    // Top up with random non-matching pairs if blocking produced too few.
    let mut guard = 0usize;
    while nonmatch_pairs.len() < n_nonmatches && guard < n_nonmatches * 20 {
        let i = rng.gen_range(0..left.len()) as u32;
        let j = rng.gen_range(0..right.len()) as u32;
        if dedup && j <= i {
            guard += 1;
            continue;
        }
        if left_entities[i as usize] != right_entities[j as usize] {
            nonmatch_pairs.push((i, j));
        }
        guard += 1;
    }
    nonmatch_pairs.truncate(n_nonmatches);

    // Assemble, shuffle, and number the pairs.
    let mut all: Vec<((u32, u32), Label)> = match_pairs
        .into_iter()
        .map(|p| (p, Label::Equivalent))
        .chain(nonmatch_pairs.into_iter().map(|p| (p, Label::Inequivalent)))
        .collect();
    all.shuffle(rng);
    // Deduplicate (blocking may emit a pair twice through different keys).
    let mut seen: HashSet<(u32, u32)> = HashSet::with_capacity(all.len());
    all.retain(|(p, _)| seen.insert(*p));

    let pairs: Vec<Pair> = all
        .into_iter()
        .enumerate()
        .map(|(k, ((i, j), label))| {
            Pair::new(
                PairId(k as u32),
                Arc::clone(left.record(RecordId(i))),
                Arc::clone(right.record(RecordId(j))),
                label,
            )
        })
        .collect();

    Workload::new(config.name.clone(), Arc::clone(&schema), schema, pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::BibliographicDomain;

    #[test]
    fn generated_dataset_matches_target_statistics() {
        let domain = BibliographicDomain::dblp_scholar();
        let mut config = DatasetConfig::small("DS-test");
        config.target_pairs = 1500;
        config.target_match_rate = 0.12;
        let ds = generate(&domain, &config);
        let w = &ds.workload;
        assert!(w.len() > 1000, "workload size {}", w.len());
        assert!(w.len() <= 1500);
        let rate = w.match_rate();
        assert!(rate > 0.06 && rate < 0.20, "match rate {rate}");
        assert_eq!(w.attribute_count(), 4);
        assert_eq!(ds.left_entities.len(), ds.left.len());
        assert_eq!(ds.right_entities.len(), ds.right.len());
    }

    #[test]
    fn generation_is_deterministic() {
        let domain = BibliographicDomain::dblp_scholar();
        let config = DatasetConfig::small("DS-test");
        let a = generate(&domain, &config);
        let b = generate(&domain, &config);
        assert_eq!(a.workload.len(), b.workload.len());
        assert_eq!(a.workload.match_count(), b.workload.match_count());
        // Spot-check a record.
        assert_eq!(a.left.record(RecordId(0)).values, b.left.record(RecordId(0)).values);
    }

    #[test]
    fn different_seeds_differ() {
        let domain = BibliographicDomain::dblp_scholar();
        let mut c1 = DatasetConfig::small("DS-test");
        let mut c2 = DatasetConfig::small("DS-test");
        c1.seed = 1;
        c2.seed = 2;
        let a = generate(&domain, &c1);
        let b = generate(&domain, &c2);
        assert_ne!(a.left.record(RecordId(0)).values, b.left.record(RecordId(0)).values);
    }

    #[test]
    fn ground_truth_is_consistent_with_entities() {
        let domain = BibliographicDomain::dblp_scholar();
        let ds = generate(&domain, &DatasetConfig::small("DS-test"));
        for p in ds.workload.pairs() {
            let le = ds.left_entities[p.left.id.0 as usize];
            let re = ds.right_entities[p.right.id.0 as usize];
            assert_eq!(p.truth.is_match(), le == re);
        }
    }

    #[test]
    fn no_duplicate_pairs() {
        let domain = BibliographicDomain::dblp_scholar();
        let ds = generate(&domain, &DatasetConfig::small("DS-test"));
        let mut seen = HashSet::new();
        for p in ds.workload.pairs() {
            assert!(
                seen.insert((p.left.id, p.right.id)),
                "duplicate pair {:?}",
                (p.left.id, p.right.id)
            );
        }
    }
}
