//! Property-based tests (proptest) of the core invariants:
//! metric ranges and symmetry, ROC/AUROC properties, portfolio aggregation,
//! VaR monotonicity, rule semantics and dataset-generator guarantees.

use learnrisk_repro::base::{auroc, Label, RocCurve};
use learnrisk_repro::core::{aggregate, pair_risk, PortfolioComponent, RiskMetric};
use learnrisk_repro::rulegen::{generate_rules, OneSidedTreeConfig};
use learnrisk_repro::similarity::difference::{
    diff_cardinality, distinct_entity, non_prefix, non_substring, non_suffix,
};
use learnrisk_repro::similarity::edit::{edit_similarity, jaro_winkler, levenshtein};
use learnrisk_repro::similarity::sequence::{lcs_similarity, substring_similarity};
use learnrisk_repro::similarity::token_sim::{dice, jaccard, overlap};
use learnrisk_repro::similarity::tokenize::tokens;
use proptest::prelude::*;

/// Strategy producing short alphanumeric strings (with spaces).
fn text() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9 ]{0,24}").unwrap()
}

/// Strategy producing comma-separated entity lists.
fn entity_list() -> impl Strategy<Value = String> {
    proptest::collection::vec("[a-z]{1,8} [a-z]{1,8}", 0..5).prop_map(|v| v.join(", "))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ------------------------------------------------------------------
    // Similarity metrics
    // ------------------------------------------------------------------

    #[test]
    fn similarity_metrics_are_bounded_and_symmetric(a in text(), b in text()) {
        for (name, value, swapped) in [
            ("edit", edit_similarity(&a, &b), edit_similarity(&b, &a)),
            ("jaro_winkler", jaro_winkler(&a, &b), jaro_winkler(&b, &a)),
            ("lcs", lcs_similarity(&a, &b), lcs_similarity(&b, &a)),
            ("substring", substring_similarity(&a, &b), substring_similarity(&b, &a)),
        ] {
            prop_assert!((0.0..=1.0).contains(&value), "{name} out of range: {value}");
            // Jaro-Winkler's prefix boost is symmetric too (common prefix is shared).
            prop_assert!((value - swapped).abs() < 1e-9, "{name} not symmetric");
        }
        let ta = tokens(&a);
        let tb = tokens(&b);
        for (name, value) in [("jaccard", jaccard(&ta, &tb)), ("dice", dice(&ta, &tb)), ("overlap", overlap(&ta, &tb))] {
            prop_assert!((0.0..=1.0).contains(&value), "{name} out of range: {value}");
        }
    }

    #[test]
    fn identical_strings_are_maximally_similar(a in text()) {
        prop_assert_eq!(levenshtein(&a, &a), 0);
        prop_assert!((edit_similarity(&a, &a) - 1.0).abs() < 1e-12);
        prop_assert!((lcs_similarity(&a, &a) - 1.0).abs() < 1e-12);
        let ta = tokens(&a);
        prop_assert!((jaccard(&ta, &ta) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn levenshtein_satisfies_triangle_inequality(a in text(), b in text(), c in text()) {
        let ab = levenshtein(&a, &b);
        let bc = levenshtein(&b, &c);
        let ac = levenshtein(&a, &c);
        prop_assert!(ac <= ab + bc, "triangle inequality violated: {ac} > {ab} + {bc}");
    }

    #[test]
    fn difference_metrics_are_binary_or_counts_and_zero_on_self(a in text(), b in text()) {
        for value in [non_substring(&a, &b), non_prefix(&a, &b), non_suffix(&a, &b)] {
            prop_assert!(value == 0.0 || value == 1.0);
        }
        prop_assert_eq!(non_substring(&a, &a), 0.0);
        prop_assert_eq!(non_prefix(&a, &a), 0.0);
        prop_assert_eq!(non_suffix(&a, &a), 0.0);
    }

    #[test]
    fn entity_set_differences_are_consistent(a in entity_list(), b in entity_list()) {
        let d = distinct_entity(&a, &b);
        prop_assert!(d >= 0.0);
        prop_assert_eq!(distinct_entity(&a, &a), 0.0);
        let c = diff_cardinality(&a, &b);
        prop_assert!(c == 0.0 || c == 1.0);
        prop_assert_eq!(diff_cardinality(&a, &a), 0.0);
    }

    // ------------------------------------------------------------------
    // ROC / AUROC
    // ------------------------------------------------------------------

    #[test]
    fn auroc_is_bounded_and_invariant_to_monotone_transforms(
        scores in proptest::collection::vec(0.0f64..1.0, 10..60),
        labels in proptest::collection::vec(0u8..2, 10..60),
    ) {
        let n = scores.len().min(labels.len());
        let scores = &scores[..n];
        let labels = &labels[..n];
        let a = auroc(scores, labels);
        prop_assert!((0.0..=1.0).contains(&a));
        // A strictly monotone transform of the scores leaves AUROC unchanged.
        let transformed: Vec<f64> = scores.iter().map(|s| 3.0 * s + 7.0).collect();
        let b = auroc(&transformed, labels);
        prop_assert!((a - b).abs() < 1e-9, "AUROC changed under monotone transform: {a} vs {b}");
        // Negating the scores flips the ranking.
        let negated: Vec<f64> = scores.iter().map(|s| -s).collect();
        let c = auroc(&negated, labels);
        let has_both = labels.contains(&0) && labels.contains(&1);
        if has_both {
            prop_assert!((a + c - 1.0).abs() < 1e-9, "AUROC of negated scores should be 1 - AUROC");
        }
    }

    #[test]
    fn roc_curve_is_monotone_nondecreasing(
        scores in proptest::collection::vec(0.0f64..1.0, 5..50),
        labels in proptest::collection::vec(0u8..2, 5..50),
    ) {
        let n = scores.len().min(labels.len());
        let curve = RocCurve::compute(&scores[..n], &labels[..n]);
        for w in curve.points.windows(2) {
            prop_assert!(w[1].fpr >= w[0].fpr - 1e-12);
            prop_assert!(w[1].tpr >= w[0].tpr - 1e-12);
        }
    }

    // ------------------------------------------------------------------
    // Portfolio aggregation and VaR
    // ------------------------------------------------------------------

    #[test]
    fn portfolio_mean_is_a_convex_combination(
        comps in proptest::collection::vec((0.01f64..10.0, 0.0f64..1.0, 0.0f64..0.5), 1..8)
    ) {
        let components: Vec<PortfolioComponent> = comps
            .iter()
            .map(|&(w, m, s)| PortfolioComponent { weight: w, mean: m, std: s })
            .collect();
        let agg = aggregate(&components);
        let min_mean = components.iter().map(|c| c.mean).fold(f64::INFINITY, f64::min);
        let max_mean = components.iter().map(|c| c.mean).fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(agg.mean >= min_mean - 1e-9 && agg.mean <= max_mean + 1e-9);
        prop_assert!(agg.variance >= 0.0);
        // Aggregated std never exceeds the largest component std.
        let max_std = components.iter().map(|c| c.std).fold(0.0f64, f64::max);
        prop_assert!(agg.std() <= max_std + 1e-9);
    }

    #[test]
    fn var_is_bounded_and_monotone_in_the_mean(
        mean in 0.0f64..1.0,
        std in 0.0f64..0.5,
        delta in 0.0f64..0.3,
    ) {
        let v = pair_risk(RiskMetric::ValueAtRisk, mean, std, false, 0.9);
        prop_assert!((0.0..=1.0).contains(&v));
        // For an unmatch-labeled pair, increasing the equivalence expectation
        // cannot decrease the risk.
        let higher = pair_risk(RiskMetric::ValueAtRisk, (mean + delta).min(1.0), std, false, 0.9);
        prop_assert!(higher >= v - 1e-9);
        // The matching direction is the mirror image.
        let m = pair_risk(RiskMetric::ValueAtRisk, mean, std, true, 0.9);
        let m_higher = pair_risk(RiskMetric::ValueAtRisk, (mean + delta).min(1.0), std, true, 0.9);
        prop_assert!(m_higher <= m + 1e-9);
    }

    // ------------------------------------------------------------------
    // Rule generation
    // ------------------------------------------------------------------

    #[test]
    fn generated_rules_respect_purity_and_support_constraints(
        rows in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 40..120),
        threshold in 0.3f64..0.7,
    ) {
        // Labels correlated with the first metric so rules exist.
        let metrics: Vec<Vec<f64>> = rows.iter().map(|&(a, b)| vec![a, b]).collect();
        let labels: Vec<Label> = rows.iter().map(|&(a, _)| Label::from_bool(a > threshold)).collect();
        let config = OneSidedTreeConfig::default();
        let rules = generate_rules(&metrics, &labels, config);
        for rule in &rules {
            prop_assert!(rule.support >= config.min_leaf_size);
            prop_assert!(rule.purity >= 1.0 - config.impurity_threshold - 1e-9);
            prop_assert!(rule.depth() <= config.max_depth);
            // The reported support/purity must be consistent with the data.
            let covered: Vec<usize> = (0..metrics.len()).filter(|&i| rule.covers(&metrics[i])).collect();
            prop_assert_eq!(covered.len(), rule.support);
            let agree = covered.iter().filter(|&&i| labels[i] == rule.target).count();
            let purity = agree as f64 / covered.len().max(1) as f64;
            prop_assert!((purity - rule.purity).abs() < 1e-9);
        }
    }
}
