//! Logistic-regression classifier.

use crate::classifier::{Classifier, TrainConfig};
use crate::optim::{Adam, Optimizer, Regularization};
use er_base::rng::substream;
use er_base::stats::{clamp_prob, safe_ln, sigmoid};
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

/// A binary logistic-regression model over dense feature vectors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogisticRegression {
    /// Feature weights.
    pub weights: Vec<f64>,
    /// Bias term.
    pub bias: f64,
}

impl LogisticRegression {
    /// Creates an untrained model for `dim` features (all-zero weights).
    pub fn new(dim: usize) -> Self {
        Self {
            weights: vec![0.0; dim],
            bias: 0.0,
        }
    }

    /// Raw linear score of a feature vector.
    pub fn score(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.weights.len());
        self.bias + self.weights.iter().zip(x).map(|(w, v)| w * v).sum::<f64>()
    }

    /// Mean cross-entropy loss over a dataset.
    pub fn loss(&self, xs: &[Vec<f64>], ys: &[f64], reg: &Regularization) -> f64 {
        let n = xs.len().max(1) as f64;
        let data: f64 = xs
            .iter()
            .zip(ys)
            .map(|(x, &y)| {
                let p = clamp_prob(sigmoid(self.score(x)));
                -(y * safe_ln(p) + (1.0 - y) * safe_ln(1.0 - p))
            })
            .sum::<f64>()
            / n;
        data + reg.penalty(&self.weights)
    }

    /// Trains the model with mini-batch Adam.
    pub fn fit(&mut self, xs: &[Vec<f64>], ys: &[f64], config: &TrainConfig) {
        assert_eq!(xs.len(), ys.len(), "features and targets must align");
        if xs.is_empty() {
            return;
        }
        let dim = xs[0].len();
        if self.weights.len() != dim {
            self.weights = vec![0.0; dim];
            self.bias = 0.0;
        }
        let mut optimizer = Adam::new(config.learning_rate);
        let mut rng = substream(config.seed, 0x11);
        let mut order: Vec<usize> = (0..xs.len()).collect();
        let batch = config.batch_size.max(1).min(xs.len());
        // Class weights to counter the heavy imbalance of ER workloads.
        let pos = ys.iter().filter(|&&y| y >= 0.5).count().max(1) as f64;
        let neg = (ys.len() as f64 - pos).max(1.0);
        let pos_weight = if config.balance_classes {
            (neg / pos).min(50.0)
        } else {
            1.0
        };

        for _epoch in 0..config.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(batch) {
                let mut grads = vec![0.0; dim + 1];
                for &i in chunk {
                    let p = sigmoid(self.score(&xs[i]));
                    let weight = if ys[i] >= 0.5 { pos_weight } else { 1.0 };
                    let err = weight * (p - ys[i]);
                    for (g, &x) in grads[..dim].iter_mut().zip(&xs[i]) {
                        *g += err * x;
                    }
                    grads[dim] += err;
                }
                let scale = 1.0 / chunk.len() as f64;
                grads.iter_mut().for_each(|g| *g *= scale);
                config.regularization.add_gradient(&self.weights, &mut grads[..dim]);
                let mut params: Vec<f64> = self.weights.iter().copied().chain(std::iter::once(self.bias)).collect();
                optimizer.step(&mut params, &grads);
                self.bias = params[dim];
                self.weights.copy_from_slice(&params[..dim]);
            }
        }
    }
}

impl Classifier for LogisticRegression {
    fn train(&mut self, xs: &[Vec<f64>], ys: &[f64], config: &TrainConfig) {
        self.fit(xs, ys, config);
    }

    fn predict_proba(&self, x: &[f64]) -> f64 {
        sigmoid(self.score(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::Classifier;
    use er_base::rng::seeded;
    use rand::Rng;

    /// Linearly separable toy data: y = 1 iff x0 + x1 > 1.
    fn toy_data(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = seeded(seed);
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for _ in 0..n {
            let a: f64 = rng.gen_range(0.0..1.0);
            let b: f64 = rng.gen_range(0.0..1.0);
            xs.push(vec![a, b]);
            ys.push(if a + b > 1.0 { 1.0 } else { 0.0 });
        }
        (xs, ys)
    }

    #[test]
    fn learns_linearly_separable_data() {
        let (xs, ys) = toy_data(400, 1);
        let mut model = LogisticRegression::new(2);
        let config = TrainConfig {
            epochs: 150,
            learning_rate: 0.05,
            ..TrainConfig::default()
        };
        model.train(&xs, &ys, &config);
        let correct = xs
            .iter()
            .zip(&ys)
            .filter(|(x, &y)| (model.predict_proba(x) >= 0.5) == (y >= 0.5))
            .count();
        let acc = correct as f64 / xs.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn loss_decreases_with_training() {
        let (xs, ys) = toy_data(200, 2);
        let mut model = LogisticRegression::new(2);
        let reg = Regularization::NONE;
        let before = model.loss(&xs, &ys, &reg);
        model.fit(
            &xs,
            &ys,
            &TrainConfig {
                epochs: 50,
                ..TrainConfig::default()
            },
        );
        let after = model.loss(&xs, &ys, &reg);
        assert!(after < before, "loss should decrease: {before} -> {after}");
    }

    #[test]
    fn untrained_model_outputs_half() {
        let model = LogisticRegression::new(3);
        assert!((model.predict_proba(&[1.0, -2.0, 0.5]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_training_is_noop() {
        let mut model = LogisticRegression::new(2);
        model.fit(&[], &[], &TrainConfig::default());
        assert_eq!(model.weights, vec![0.0, 0.0]);
    }

    #[test]
    fn class_balancing_raises_minority_recall() {
        // 95% negatives; positives live in a corner.
        let mut rng = seeded(3);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..500 {
            let pos = rng.gen_bool(0.05);
            let x = if pos {
                rng.gen_range(0.8..1.0)
            } else {
                rng.gen_range(0.0..0.75)
            };
            xs.push(vec![x]);
            ys.push(if pos { 1.0 } else { 0.0 });
        }
        let mut balanced = LogisticRegression::new(1);
        balanced.fit(
            &xs,
            &ys,
            &TrainConfig {
                epochs: 80,
                balance_classes: true,
                ..TrainConfig::default()
            },
        );
        let recall = |m: &LogisticRegression| {
            let mut tp = 0;
            let mut fn_ = 0;
            for (x, &y) in xs.iter().zip(&ys) {
                if y >= 0.5 {
                    if m.predict_proba(x) >= 0.5 {
                        tp += 1;
                    } else {
                        fn_ += 1;
                    }
                }
            }
            tp as f64 / (tp + fn_).max(1) as f64
        };
        assert!(recall(&balanced) > 0.6, "balanced recall {}", recall(&balanced));
    }
}
