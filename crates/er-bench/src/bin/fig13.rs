//! Regenerates Figure 13 (scalability of rule generation and risk training),
//! extended with the `er-serve` engine's batched-scoring throughput per
//! `--threads` entry so offline and serving scalability land in one table.
use er_eval::{render_scalability, run_fig13};

fn main() {
    let args = er_bench::parse_args(0.05);
    let sizes = [500, 1000, 2000, 3000, 4000, 6000];
    let points = run_fig13(&args.config, &sizes, &args.threads);
    println!("{}", render_scalability(&points));
}
