//! # er-datasets
//!
//! Synthetic ER benchmark generators that emulate the datasets evaluated in
//! the paper (DBLP-Scholar, Abt-Buy, Amazon-Google, Songs, DBLP-ACM), plus the
//! token-blocking step that turns tables into candidate-pair workloads.
//!
//! The original benchmark files are not redistributed here; instead, seeded
//! generators reproduce their *shape* — schema, dirtiness profile, class
//! imbalance and size (see `DESIGN.md` for the substitution rationale).
//!
//! * [`vocab`] — word pools for titles, names, venues, products and songs.
//! * [`perturb`] — dirtiness operators (typos, abbreviation, missing values…).
//! * [`generator`] — the generic entity/record/workload builder.
//! * [`domains`] — bibliographic, product and song domain generators.
//! * [`blocking`] — token blocking and blocking-quality measures.
//! * [`benchmark`] — named configurations mirroring Table 2 of the paper.

#![warn(missing_docs)]

pub mod benchmark;
pub mod blocking;
pub mod domains;
pub mod generator;
pub mod perturb;
pub mod vocab;

pub use benchmark::{benchmark_config, generate_benchmark, table2, BenchmarkId, Table2Row};
pub use domains::{BibliographicDomain, ProductDomain, ProductStyle, SongDomain};
pub use generator::{generate, CleanEntity, DatasetConfig, Domain, GeneratedDataset};
pub use perturb::DirtinessProfile;
