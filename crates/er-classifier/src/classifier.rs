//! The classifier abstraction and end-to-end ER matcher.

use crate::features::{targets, PairFeaturizer};
use crate::linear::LogisticRegression;
use crate::mlp::Mlp;
use crate::optim::Regularization;
use er_base::{LabeledWorkload, Pair};
use er_similarity::MetricEvaluator;
use serde::{Deserialize, Serialize};

/// Training hyper-parameters shared by the classifiers.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training data.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Mini-batch size.
    pub batch_size: usize,
    /// L1/L2 regularization.
    pub regularization: Regularization,
    /// Whether to up-weight the minority (matching) class.
    pub balance_classes: bool,
    /// Random seed (shuffling, initialization).
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 60,
            learning_rate: 0.02,
            batch_size: 32,
            regularization: Regularization::new(0.0, 1e-4),
            balance_classes: true,
            seed: 7,
        }
    }
}

/// A binary classifier over dense feature vectors.
pub trait Classifier {
    /// Trains the classifier on features `xs` with targets `ys` (1.0 = match).
    fn train(&mut self, xs: &[Vec<f64>], ys: &[f64], config: &TrainConfig);

    /// Predicts the equivalence probability of a feature vector.
    fn predict_proba(&self, x: &[f64]) -> f64;

    /// Predicts probabilities for many feature vectors.
    fn predict_proba_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|x| self.predict_proba(x)).collect()
    }
}

/// Which model architecture an [`ErMatcher`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MatcherKind {
    /// Logistic regression over similarity features.
    Logistic,
    /// Multi-layer perceptron over similarity features (DeepMatcher substitute).
    Mlp,
}

/// An end-to-end ER matcher: featurization plus a trained model.
///
/// This plays the role of DeepMatcher in the paper: given a training split it
/// learns to label pairs, and its probability outputs (including its mistakes)
/// are what risk analysis ranks.
pub struct ErMatcher {
    featurizer: PairFeaturizer,
    kind: MatcherKind,
    logistic: Option<LogisticRegression>,
    mlp: Option<Mlp>,
    config: TrainConfig,
}

impl ErMatcher {
    /// Creates a matcher over a metric evaluator.
    pub fn new(evaluator: MetricEvaluator, kind: MatcherKind, config: TrainConfig) -> Self {
        Self {
            featurizer: PairFeaturizer::new(evaluator),
            kind,
            logistic: None,
            mlp: None,
            config,
        }
    }

    /// The matcher's featurizer (shared with baselines that need raw features).
    pub fn featurizer(&self) -> &PairFeaturizer {
        &self.featurizer
    }

    /// Trains the matcher on labeled pairs.
    pub fn train(&mut self, train_pairs: &[Pair]) {
        assert!(!train_pairs.is_empty(), "cannot train a matcher on an empty split");
        let xs = self.featurizer.fit(train_pairs);
        let ys = targets(train_pairs);
        match self.kind {
            MatcherKind::Logistic => {
                let mut model = LogisticRegression::new(self.featurizer.dim());
                model.train(&xs, &ys, &self.config);
                self.logistic = Some(model);
            }
            MatcherKind::Mlp => {
                let hidden = [24, 12];
                let mut model = Mlp::new(self.featurizer.dim(), &hidden, self.config.seed);
                model.train(&xs, &ys, &self.config);
                self.mlp = Some(model);
            }
        }
    }

    /// Predicts the equivalence probability of one pair.
    pub fn predict_pair(&self, pair: &Pair) -> f64 {
        let x = self.featurizer.features_one(pair);
        self.predict_features(&x)
    }

    /// Predicts from a pre-computed feature vector.
    pub fn predict_features(&self, x: &[f64]) -> f64 {
        match self.kind {
            MatcherKind::Logistic => self.logistic.as_ref().expect("matcher not trained").predict_proba(x),
            MatcherKind::Mlp => self.mlp.as_ref().expect("matcher not trained").predict_proba(x),
        }
    }

    /// Predicts probabilities for a slice of pairs.
    pub fn predict(&self, pairs: &[Pair]) -> Vec<f64> {
        pairs.iter().map(|p| self.predict_pair(p)).collect()
    }

    /// Labels a workload: predicts every pair and wraps the results.
    pub fn label_workload(&self, name: &str, pairs: &[Pair]) -> LabeledWorkload {
        let probs = self.predict(pairs);
        LabeledWorkload::from_probabilities(name, pairs.to_vec(), &probs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_datasets::{generate_benchmark, BenchmarkId};

    fn split_pairs(pairs: &[Pair], frac: f64) -> (Vec<Pair>, Vec<Pair>) {
        let n = (pairs.len() as f64 * frac) as usize;
        (pairs[..n].to_vec(), pairs[n..].to_vec())
    }

    #[test]
    fn logistic_matcher_beats_chance_on_ds() {
        let ds = generate_benchmark(BenchmarkId::DblpScholar, 0.02, 11);
        let pairs = ds.workload.pairs();
        let (train, test) = split_pairs(pairs, 0.5);
        let evaluator = MetricEvaluator::from_pairs(ds.workload.left_schema.clone(), &train);
        let mut matcher = ErMatcher::new(
            evaluator,
            MatcherKind::Logistic,
            TrainConfig {
                epochs: 40,
                ..Default::default()
            },
        );
        matcher.train(&train);
        let labeled = matcher.label_workload("DS-test", &test);
        let f1 = labeled.classifier_f1();
        assert!(f1 > 0.5, "matcher F1 too low: {f1}");
        // The matcher must make *some* mistakes — otherwise risk analysis has
        // nothing to rank (and the synthetic data would be unrealistically easy).
        assert!(labeled.mislabeled_count() > 0, "synthetic workload is too easy");
    }

    #[test]
    fn mlp_matcher_trains_and_predicts() {
        let ds = generate_benchmark(BenchmarkId::AbtBuy, 0.01, 3);
        let pairs = ds.workload.pairs();
        let (train, test) = split_pairs(pairs, 0.5);
        let evaluator = MetricEvaluator::from_pairs(ds.workload.left_schema.clone(), &train);
        let config = TrainConfig {
            epochs: 25,
            learning_rate: 0.01,
            ..Default::default()
        };
        let mut matcher = ErMatcher::new(evaluator, MatcherKind::Mlp, config);
        matcher.train(&train);
        let probs = matcher.predict(&test);
        assert_eq!(probs.len(), test.len());
        assert!(probs.iter().all(|p| (0.0..=1.0).contains(p)));
        let labeled = matcher.label_workload("AB-test", &test);
        assert!(labeled.classifier_accuracy() > 0.7);
    }

    #[test]
    #[should_panic(expected = "empty split")]
    fn training_on_empty_split_panics() {
        let ds = generate_benchmark(BenchmarkId::DblpScholar, 0.01, 1);
        let evaluator = MetricEvaluator::from_pairs(ds.workload.left_schema.clone(), ds.workload.pairs());
        let mut matcher = ErMatcher::new(evaluator, MatcherKind::Logistic, TrainConfig::default());
        matcher.train(&[]);
    }

    #[test]
    fn train_config_default_is_sane() {
        let c = TrainConfig::default();
        assert!(c.epochs > 0);
        assert!(c.learning_rate > 0.0);
        assert!(c.balance_classes);
    }
}
