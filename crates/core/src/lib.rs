//! # learnrisk-core
//!
//! The paper's primary contribution: an interpretable and learnable risk model
//! for entity resolution (LearnRisk).
//!
//! * [`feature`] — risk features (one-sided rules + classifier output), prior
//!   expectation estimation and the per-pair feature inputs.
//! * [`distribution`] — normal / truncated-normal equivalence-probability
//!   distributions.
//! * [`portfolio`] — the investment-portfolio aggregation of feature
//!   distributions (Eq. 2–3), in two bit-identical layouts: the AoS
//!   reference path and the SoA [`portfolio::ComponentBlock`] hot path,
//!   whose fused chunk-order reduction autovectorizes.
//! * [`influence`] — the classifier-output influence function (Eq. 11).
//! * [`var`] — Value-at-Risk / CVaR risk metrics (Eq. 8–10).
//! * [`model`] — the [`model::LearnRiskModel`] with its learnable parameters
//!   and interpretation output.
//! * [`mod@train`] — pairwise learning-to-rank training with analytic gradients
//!   (Eq. 13–17), plus L1/L2 regularization.  The trainer's hot path is
//!   *lambda-factorized*: one forward and one gradient model evaluation per
//!   input per epoch (instead of four per ranking pair), allocation-free
//!   after warm-up, parallelized with a bit-deterministic sharded reduction
//!   ([`train::EpochScratch`]).

#![warn(missing_docs)]

pub mod distribution;
pub mod feature;
pub mod influence;
pub mod model;
pub mod portfolio;
pub mod train;
pub mod var;

pub use distribution::{Normal, TruncatedNormal};
pub use feature::{build_input_from_row, build_inputs, metric_rows, rule_coverage, PairRiskInput, RiskFeatureSet};
pub use influence::InfluenceFunction;
pub use model::{FeatureContribution, LearnRiskModel, RiskModelConfig};
pub use portfolio::{
    aggregate, component_gradients, try_aggregate, ComponentBlock, ComponentGradients, GradientBlock,
    PortfolioComponent, PortfolioDistribution, PortfolioError,
};
pub use train::{
    default_train_threads, evaluate_auroc, flatten_params, loss_and_gradient, sample_rank_pairs, train,
    train_with_threads, unflatten_params, EpochScratch, EpochSpan, RankPairSampler, RiskTrainConfig, TrainReport,
};
pub use var::{pair_risk, RiskMetric};
