//! # er-base
//!
//! Foundational types for the LearnRisk reproduction: records, schemas, tables,
//! candidate pairs, labeled workloads, train/validation/test splits, evaluation
//! metrics (ROC/AUROC, confusion matrices) and deterministic RNG helpers.
//!
//! Every other crate in the workspace builds on these types:
//!
//! * [`record`] / [`table`] — the data model of an ER task.
//! * [`pair`] / [`workload`] — candidate pairs, classifier decisions, splits.
//! * [`metrics`] — ROC / AUROC / F1 used throughout the paper's evaluation.
//! * [`stats`] — shared numeric helpers (sigmoid, normal CDF/quantile, …).
//! * [`rng`] — reproducible random streams.

#![warn(missing_docs)]

pub mod metrics;
pub mod pair;
pub mod record;
pub mod rng;
pub mod stats;
pub mod table;
pub mod workload;

pub use metrics::{auroc, average_precision, ConfusionMatrix, RocCurve, RocPoint};
pub use pair::{Decision, Label, LabeledPair, Pair, PairId};
pub use record::{AttrDef, AttrType, AttrValue, Record, RecordId, Schema, SharedRecord};
pub use table::Table;
pub use workload::{LabeledWorkload, SplitRatio, Workload, WorkloadSplit};
