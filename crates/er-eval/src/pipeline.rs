//! The end-to-end risk-analysis pipeline.
//!
//! One pipeline run reproduces a single cell of the paper's evaluation: given
//! a candidate-pair workload and a train/validation/test split, it
//!
//! 1. trains the ER classifier (DeepMatcher substitute) on the training split;
//! 2. labels the validation and test splits with the classifier;
//! 3. generates one-sided risk features from the training split;
//! 4. constructs and trains the LearnRisk model on the validation split;
//! 5. scores the test split with LearnRisk and every baseline;
//! 6. reports AUROC per method.

use er_base::{auroc, Label, LabeledPair, LabeledWorkload, Pair, SplitRatio, Workload};
use er_baselines::{
    baseline_scores, HoloCleanConfig, HoloCleanRisk, StaticRisk, StaticRiskConfig, TrustScore, TrustScoreConfig,
    UncertaintyScorer,
};
use er_classifier::{BootstrapEnsemble, ErMatcher, MatcherKind, TrainConfig};
use er_rulegen::{OneSidedTreeConfig, RandomForest, TwoSidedTreeConfig};
use er_similarity::MetricEvaluator;
use learnrisk_core::{
    build_input_from_row, default_train_threads, evaluate_auroc, train_with_threads, LearnRiskModel, PairRiskInput,
    RiskFeatureSet, RiskModelConfig, RiskTrainConfig,
};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// All the knobs of one pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Which classifier architecture plays the DeepMatcher role.
    pub matcher: MatcherKind,
    /// Classifier training hyper-parameters.
    pub matcher_config: TrainConfig,
    /// One-sided rule generation configuration.
    pub rule_config: OneSidedTreeConfig,
    /// Risk-model structure configuration.
    pub risk_config: RiskModelConfig,
    /// Risk-model training configuration.
    pub risk_train_config: RiskTrainConfig,
    /// Worker threads for risk-model training.  The factorized trainer is
    /// bit-deterministic across thread counts, so this only affects speed,
    /// never results.
    pub risk_train_threads: usize,
    /// Number of bootstrap-ensemble members for the Uncertainty baseline
    /// (the paper trains 20 models).
    pub ensemble_members: usize,
    /// Whether to also run the HoloClean comparison (Figure 11).
    pub run_holoclean: bool,
    /// Random seed.
    pub seed: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            matcher: MatcherKind::Mlp,
            matcher_config: TrainConfig {
                epochs: 30,
                learning_rate: 0.01,
                ..Default::default()
            },
            rule_config: OneSidedTreeConfig::default(),
            risk_config: RiskModelConfig::default(),
            risk_train_config: RiskTrainConfig {
                epochs: 120,
                ..Default::default()
            },
            risk_train_threads: default_train_threads(),
            ensemble_members: 20,
            run_holoclean: false,
            seed: 17,
        }
    }
}

/// AUROC (and scores) of one risk method on the test split.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MethodResult {
    /// Method name as used in the paper's figures.
    pub method: String,
    /// AUROC of the risk ranking against the mislabeled/correct labels.
    pub auroc: f64,
    /// Raw risk scores (aligned with the test pairs).
    pub scores: Vec<f64>,
}

/// Result of one pipeline run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineResult {
    /// Dataset name.
    pub dataset: String,
    /// Split-ratio label (e.g. `"3:2:5"`).
    pub ratio: String,
    /// Classifier F1 on the test split.
    pub classifier_f1: f64,
    /// Number of test pairs.
    pub test_size: usize,
    /// Number of test pairs the classifier mislabeled.
    pub test_mislabeled: usize,
    /// Number of generated risk features (rules).
    pub rule_count: usize,
    /// Per-method results.
    pub methods: Vec<MethodResult>,
    /// Wall-clock seconds spent generating rules.
    pub rule_generation_secs: f64,
    /// Wall-clock seconds spent training the risk model.
    pub risk_training_secs: f64,
}

impl PipelineResult {
    /// AUROC of a method by name, if present.
    pub fn auroc_of(&self, method: &str) -> Option<f64> {
        self.methods.iter().find(|m| m.method == method).map(|m| m.auroc)
    }
}

/// The trained artifacts of a pipeline run, for callers that need to reuse the
/// classifier or risk model (e.g. the active-learning experiment).
pub struct PipelineArtifacts {
    /// The trained matcher.
    pub matcher: ErMatcher,
    /// Metric evaluator (raw basic metrics, shared by rule generation and
    /// risk-feature construction).
    pub evaluator: MetricEvaluator,
    /// The trained risk model.
    pub risk_model: LearnRiskModel,
    /// Risk inputs of the test pairs.
    pub test_inputs: Vec<PairRiskInput>,
}

/// Runs the full pipeline on explicit train / validation / test pair sets.
///
/// `schema` is the (left) schema shared by all three splits; it drives which
/// basic metrics are generated per attribute.
pub fn run_pipeline_on_splits(
    dataset: &str,
    ratio_label: &str,
    schema: std::sync::Arc<er_base::Schema>,
    train: &[Pair],
    valid: &[Pair],
    test: &[Pair],
    config: &PipelineConfig,
) -> (PipelineResult, PipelineArtifacts) {
    assert!(
        !train.is_empty() && !valid.is_empty() && !test.is_empty(),
        "all three splits must be non-empty"
    );
    assert_eq!(
        schema.len(),
        train[0].left.values.len(),
        "schema arity mismatch with training pairs"
    );
    assert_eq!(
        train[0].left.values.len(),
        test[0].left.values.len(),
        "train/test schema mismatch"
    );

    // --- classifier -------------------------------------------------------
    let evaluator = MetricEvaluator::from_pairs(schema, train);
    let mut matcher = ErMatcher::new(evaluator.clone(), config.matcher, config.matcher_config);
    matcher.train(train);

    let valid_labeled = matcher.label_workload(&format!("{dataset}-valid"), valid);
    let test_labeled = matcher.label_workload(&format!("{dataset}-test"), test);

    // --- shared feature representations ------------------------------------
    let train_features = matcher.featurizer().features(train);
    let test_features = matcher.featurizer().features(test);
    let train_labels: Vec<Label> = train.iter().map(|p| p.truth).collect();
    let train_is_match: Vec<bool> = train_labels.iter().map(|l| l.is_match()).collect();
    let test_outputs: Vec<f64> = test_labeled.pairs.iter().map(|p| p.decision.probability).collect();
    let test_says_match: Vec<bool> = test_labeled
        .pairs
        .iter()
        .map(|p| p.decision.predicted.is_match())
        .collect();
    let test_risk_labels: Vec<u8> = test_labeled.risk_labels();

    let mut methods = Vec::new();

    // --- Baseline -----------------------------------------------------------
    let scores = baseline_scores(&test_outputs);
    methods.push(MethodResult {
        method: "Baseline".into(),
        auroc: auroc(&scores, &test_risk_labels),
        scores,
    });

    // --- Uncertainty --------------------------------------------------------
    let ensemble = BootstrapEnsemble::train(
        &train_features,
        &train_labels.iter().map(|l| l.as_f64()).collect::<Vec<_>>(),
        config.ensemble_members,
        &TrainConfig {
            epochs: 20,
            ..config.matcher_config
        },
    );
    let scores = UncertaintyScorer::new(&ensemble).scores(&test_features);
    methods.push(MethodResult {
        method: "Uncertainty".into(),
        auroc: auroc(&scores, &test_risk_labels),
        scores,
    });

    // --- TrustScore ---------------------------------------------------------
    let trust = TrustScore::fit(&train_features, &train_is_match, TrustScoreConfig::default());
    let scores = trust.scores(&test_features, &test_says_match);
    methods.push(MethodResult {
        method: "TrustScore".into(),
        auroc: auroc(&scores, &test_risk_labels),
        scores,
    });

    // --- StaticRisk ---------------------------------------------------------
    let valid_outputs: Vec<f64> = valid_labeled.pairs.iter().map(|p| p.decision.probability).collect();
    let valid_is_match: Vec<bool> = valid_labeled.pairs.iter().map(|p| p.pair.truth.is_match()).collect();
    let static_risk = StaticRisk::fit(&valid_outputs, &valid_is_match, StaticRiskConfig::default());
    let scores = static_risk.scores(&test_outputs, &test_says_match);
    methods.push(MethodResult {
        method: "StaticRisk".into(),
        auroc: auroc(&scores, &test_risk_labels),
        scores,
    });

    // --- LearnRisk ----------------------------------------------------------
    let rule_timer = Instant::now();
    let train_rows = evaluator.eval_pairs(train);
    let rules = er_rulegen::generate_rules(&train_rows, &train_labels, config.rule_config);
    let rule_generation_secs = rule_timer.elapsed().as_secs_f64();
    let feature_set = RiskFeatureSet::from_training(rules, evaluator.metrics().to_vec(), &train_rows, &train_labels);
    let rule_count = feature_set.len();

    let risk_timer = Instant::now();
    let mut risk_model = LearnRiskModel::new(feature_set, config.risk_config);
    let valid_inputs = build_inputs_from_labeled(&evaluator, &risk_model.features, &valid_labeled);
    let test_inputs = build_inputs_from_labeled(&evaluator, &risk_model.features, &test_labeled);
    train_with_threads(
        &mut risk_model,
        &valid_inputs,
        &config.risk_train_config,
        config.risk_train_threads,
    );
    let risk_training_secs = risk_timer.elapsed().as_secs_f64();

    let scores = risk_model.rank(&test_inputs);
    methods.push(MethodResult {
        method: "LearnRisk".into(),
        auroc: evaluate_auroc(&risk_model, &test_inputs),
        scores,
    });

    // --- HoloClean (optional, Figure 11) ------------------------------------
    if config.run_holoclean {
        let forest = RandomForest::fit(
            &train_rows,
            &train_labels,
            &TwoSidedTreeConfig {
                max_depth: config.rule_config.max_depth.max(4),
                ..Default::default()
            },
        );
        let two_sided_rules = forest.rules(rule_count.max(10));
        let hc = HoloCleanRisk::new(two_sided_rules, HoloCleanConfig::default());
        let test_rows = evaluator.eval_pairs(test);
        let scores = hc.scores(&test_rows, &test_outputs, &test_says_match);
        methods.push(MethodResult {
            method: "HoloClean".into(),
            auroc: auroc(&scores, &test_risk_labels),
            scores,
        });
    }

    let result = PipelineResult {
        dataset: dataset.to_owned(),
        ratio: ratio_label.to_owned(),
        classifier_f1: test_labeled.classifier_f1(),
        test_size: test_labeled.len(),
        test_mislabeled: test_labeled.mislabeled_count(),
        rule_count,
        methods,
        rule_generation_secs,
        risk_training_secs,
    };
    let artifacts = PipelineArtifacts {
        matcher,
        evaluator,
        risk_model,
        test_inputs,
    };
    (result, artifacts)
}

/// Runs the full pipeline on a workload under a split ratio.
pub fn run_pipeline(
    workload: &Workload,
    ratio: SplitRatio,
    config: &PipelineConfig,
) -> (PipelineResult, PipelineArtifacts) {
    let mut rng = er_base::rng::substream(config.seed, 0x90);
    let split = workload.split_by_ratio(ratio, &mut rng);
    let train = workload.select(&split.train);
    let valid = workload.select(&split.valid);
    let test = workload.select(&split.test);
    run_pipeline_on_splits(
        &workload.name,
        &ratio.label(),
        std::sync::Arc::clone(&workload.left_schema),
        &train,
        &valid,
        &test,
        config,
    )
}

/// Builds risk inputs for every pair of a labeled workload.
pub fn build_inputs_from_labeled(
    evaluator: &MetricEvaluator,
    feature_set: &RiskFeatureSet,
    labeled: &LabeledWorkload,
) -> Vec<PairRiskInput> {
    labeled
        .pairs
        .iter()
        .map(|lp: &LabeledPair| {
            let row = evaluator.eval_all(&lp.pair.left, &lp.pair.right);
            build_input_from_row(feature_set, &row, lp)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_datasets::{generate_benchmark, BenchmarkId};

    #[test]
    fn pipeline_produces_all_methods_and_sane_aurocs() {
        let ds = generate_benchmark(BenchmarkId::DblpScholar, 0.025, 41);
        let config = PipelineConfig {
            matcher: MatcherKind::Logistic,
            matcher_config: TrainConfig {
                epochs: 25,
                ..Default::default()
            },
            risk_train_config: RiskTrainConfig {
                epochs: 60,
                ..Default::default()
            },
            ensemble_members: 8,
            run_holoclean: true,
            ..Default::default()
        };
        let (result, artifacts) = run_pipeline(&ds.workload, SplitRatio::new(3, 2, 5), &config);
        let names: Vec<&str> = result.methods.iter().map(|m| m.method.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "Baseline",
                "Uncertainty",
                "TrustScore",
                "StaticRisk",
                "LearnRisk",
                "HoloClean"
            ]
        );
        assert!(result.test_mislabeled > 0, "need mislabeled pairs to rank");
        assert!(result.rule_count > 0, "no risk features generated");
        for m in &result.methods {
            assert_eq!(m.scores.len(), result.test_size);
            assert!((0.0..=1.0).contains(&m.auroc), "{} AUROC {}", m.method, m.auroc);
        }
        // LearnRisk should beat the naive baseline on this workload.
        let learn = result.auroc_of("LearnRisk").unwrap();
        let base = result.auroc_of("Baseline").unwrap();
        assert!(learn > 0.6, "LearnRisk AUROC too low: {learn}");
        assert!(
            learn >= base - 0.05,
            "LearnRisk ({learn}) should not lose badly to Baseline ({base})"
        );
        assert_eq!(artifacts.test_inputs.len(), result.test_size);
        assert!(result.rule_generation_secs >= 0.0 && result.risk_training_secs >= 0.0);
    }
}
