//! The LearnRisk model: learnable parameters, risk scoring and interpretation.

use crate::distribution::{Normal, TruncatedNormal};
use crate::feature::{PairRiskInput, RiskFeatureSet};
use crate::influence::InfluenceFunction;
use crate::portfolio::{aggregate, ComponentBlock, PortfolioComponent, PortfolioDistribution, PortfolioError};
use crate::var::{pair_risk, training_risk_score, RiskMetric};
use er_base::stats::std_normal_quantile;
use serde::{Deserialize, Serialize};

/// Static configuration of a LearnRisk model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RiskModelConfig {
    /// VaR confidence level θ (the paper uses 0.9).
    pub theta: f64,
    /// Risk metric (VaR in the paper; CVaR / expectation available for
    /// ablations).
    pub metric: RiskMetric,
    /// Number of classifier-output buckets, each with its own learnable RSD.
    pub output_buckets: usize,
    /// Initial Relative Standard Deviation of rule features.
    pub initial_rule_rsd: f64,
    /// Initial RSD of the classifier-output feature buckets.
    pub initial_output_rsd: f64,
    /// Initial weight of every rule feature.
    pub initial_rule_weight: f64,
}

impl Default for RiskModelConfig {
    fn default() -> Self {
        Self {
            theta: 0.9,
            metric: RiskMetric::ValueAtRisk,
            output_buckets: 10,
            initial_rule_rsd: 0.3,
            initial_output_rsd: 0.3,
            initial_rule_weight: 1.0,
        }
    }
}

/// Contribution of one feature to a pair's risk, for interpretation output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeatureContribution {
    /// Human-readable description of the feature.
    pub description: String,
    /// Weight of the feature in the pair's portfolio.
    pub weight: f64,
    /// Expectation of the feature distribution.
    pub expectation: f64,
    /// Standard deviation of the feature distribution.
    pub std: f64,
}

/// The learnable risk model (Sections 4.2, 6 of the paper).
///
/// Parameters:
/// * one weight `w_j` per rule feature (learnable),
/// * one RSD per rule feature, giving `σ_j = RSD_j · μ_j` (learnable),
/// * the influence-function shape `(α, β)` of the classifier-output feature
///   (learnable),
/// * one RSD per classifier-output bucket (learnable),
/// * the rule expectations `μ_j`, treated as prior knowledge from the
///   classifier-training data (fixed).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LearnRiskModel {
    /// The rule feature set with prior expectations.
    pub features: RiskFeatureSet,
    /// Learnable weight of each rule feature.
    pub rule_weights: Vec<f64>,
    /// Learnable RSD of each rule feature.
    pub rule_rsd: Vec<f64>,
    /// Learnable influence function of the classifier-output feature.
    pub influence: InfluenceFunction,
    /// Learnable RSD of each classifier-output bucket.
    pub output_rsd: Vec<f64>,
    /// Static configuration.
    pub config: RiskModelConfig,
}

impl LearnRiskModel {
    /// Creates a model with initial parameters from a feature set.
    pub fn new(features: RiskFeatureSet, config: RiskModelConfig) -> Self {
        let n = features.len();
        Self {
            rule_weights: vec![config.initial_rule_weight; n],
            rule_rsd: vec![config.initial_rule_rsd; n],
            influence: InfluenceFunction::default(),
            output_rsd: vec![config.initial_output_rsd; config.output_buckets.max(1)],
            features,
            config,
        }
    }

    /// The z-score of the VaR confidence level, used by the differentiable
    /// training score.
    pub fn z_theta(&self) -> f64 {
        std_normal_quantile(self.config.theta)
    }

    /// Bucket index of a classifier output.
    pub fn output_bucket(&self, output: f64) -> usize {
        let k = self.output_rsd.len();
        ((output.clamp(0.0, 1.0) * k as f64) as usize).min(k - 1)
    }

    /// Builds the portfolio components of a pair: its rule features plus the
    /// classifier-output feature.
    pub fn components(&self, input: &PairRiskInput) -> Vec<PortfolioComponent> {
        let mut comps = Vec::with_capacity(input.rule_indices.len() + 1);
        self.components_into(input, &mut comps);
        comps
    }

    /// The `(weight, mean, std)` of rule feature `j`'s portfolio component —
    /// the single source of the clamping rules, shared by both layout fill
    /// paths so their bit-identity cannot drift apart.
    #[inline]
    fn rule_component(&self, j: usize) -> (f64, f64, f64) {
        let mu = self.features.expectations[j];
        (self.rule_weights[j].max(1e-6), mu, (self.rule_rsd[j] * mu).max(0.0))
    }

    /// The `(weight, mean, std)` of the classifier-output component for the
    /// already-clamped output `p`: expectation is the output itself, weight
    /// comes from the influence function, std from the bucket RSD.
    #[inline]
    fn classifier_component(&self, p: f64) -> (f64, f64, f64) {
        let bucket = self.output_bucket(p);
        (
            self.influence.weight(p).max(1e-6),
            p,
            (self.output_rsd[bucket] * p).max(0.0),
        )
    }

    /// [`Self::components`] into a caller-owned buffer (cleared first), so
    /// per-pair scoring on the serving hot path allocates nothing once the
    /// buffer has warmed up.
    pub fn components_into(&self, input: &PairRiskInput, comps: &mut Vec<PortfolioComponent>) {
        comps.clear();
        comps.reserve(input.rule_indices.len() + 1);
        for &ri in &input.rule_indices {
            let (weight, mean, std) = self.rule_component(ri as usize);
            comps.push(PortfolioComponent { weight, mean, std });
        }
        let (weight, mean, std) = self.classifier_component(input.classifier_output.clamp(0.0, 1.0));
        comps.push(PortfolioComponent { weight, mean, std });
    }

    /// [`Self::components_into`] in structure-of-arrays layout: fills a
    /// reusable [`ComponentBlock`] (cleared first) with the identical
    /// components in the identical order (both paths call the same
    /// component constructors), so [`ComponentBlock::aggregate`] over it is
    /// bit-identical to [`aggregate`] over [`Self::components_into`]'s
    /// output.  This is what the training and serving hot paths call per
    /// pair.
    pub fn components_into_block(&self, input: &PairRiskInput, block: &mut ComponentBlock) {
        block.clear();
        block.reserve(input.rule_indices.len() + 1);
        for &ri in &input.rule_indices {
            let (weight, mean, std) = self.rule_component(ri as usize);
            block.push(weight, mean, std);
        }
        let (weight, mean, std) = self.classifier_component(input.classifier_output.clamp(0.0, 1.0));
        block.push(weight, mean, std);
    }

    /// The aggregated equivalence-probability distribution of a pair.
    pub fn pair_distribution(&self, input: &PairRiskInput) -> PortfolioDistribution {
        aggregate(&self.components(input))
    }

    /// The truncated-normal form of the pair distribution (for reporting).
    pub fn pair_truncated(&self, input: &PairRiskInput) -> TruncatedNormal {
        let d = self.pair_distribution(input);
        TruncatedNormal::unit(Normal::new(d.mean, d.std()))
    }

    /// Risk score of a pair under the configured metric (VaR by default).
    pub fn risk_score(&self, input: &PairRiskInput) -> f64 {
        let mut block = ComponentBlock::with_capacity(input.rule_indices.len() + 1);
        self.risk_score_with(input, &mut block)
    }

    /// [`Self::risk_score`] reusing a caller-owned SoA component block — the
    /// allocation-free form the serving engine calls per request. The
    /// arithmetic is bit-identical to the AoS reference path (same component
    /// order, same canonical chunked aggregation), so the two produce
    /// bit-equal scores.
    pub fn risk_score_with(&self, input: &PairRiskInput, block: &mut ComponentBlock) -> f64 {
        self.components_into_block(input, block);
        let d = block.aggregate();
        pair_risk(
            self.config.metric,
            d.mean,
            d.std(),
            input.machine_says_match,
            self.config.theta,
        )
    }

    /// Fallible [`Self::risk_score_with`]: a degenerate portfolio (no
    /// components, non-positive total weight — e.g. from a hand-corrupted
    /// artifact) becomes a [`PortfolioError`] instead of a panic, so a
    /// serving worker can turn it into a request error.
    pub fn try_risk_score_with(
        &self,
        input: &PairRiskInput,
        block: &mut ComponentBlock,
    ) -> Result<f64, PortfolioError> {
        self.components_into_block(input, block);
        let d = block.try_aggregate()?;
        Ok(pair_risk(
            self.config.metric,
            d.mean,
            d.std(),
            input.machine_says_match,
            self.config.theta,
        ))
    }

    /// The differentiable *training-time* risk score γ of a pair (the
    /// untruncated VaR surrogate of Eq. 13 the trainer optimizes), reusing a
    /// caller-owned SoA component block so batch forward passes allocate
    /// nothing after warm-up.
    pub fn training_score_with(&self, input: &PairRiskInput, block: &mut ComponentBlock) -> f64 {
        self.training_score_with_z(input, self.z_theta(), block)
    }

    /// [`Self::training_score_with`] with a precomputed `z_theta` — the
    /// per-input form of the trainer's forward pass, which hoists the
    /// quantile computation out of the loop.
    pub fn training_score_with_z(&self, input: &PairRiskInput, z_theta: f64, block: &mut ComponentBlock) -> f64 {
        self.components_into_block(input, block);
        let d = block.aggregate();
        training_risk_score(d.mean, d.std(), input.machine_says_match, z_theta)
    }

    /// Risk scores for a batch of pairs.
    pub fn rank(&self, inputs: &[PairRiskInput]) -> Vec<f64> {
        inputs.iter().map(|i| self.risk_score(i)).collect()
    }

    /// Interpretable explanation of a pair's risk: each active feature with
    /// its weight, expectation and standard deviation (the "Feature
    /// Description" panel of Figure 3).
    pub fn explain(&self, input: &PairRiskInput) -> Vec<FeatureContribution> {
        let mut out = Vec::with_capacity(input.rule_indices.len() + 1);
        for &ri in &input.rule_indices {
            let j = ri as usize;
            let mu = self.features.expectations[j];
            out.push(FeatureContribution {
                description: self.features.describe(j),
                weight: self.rule_weights[j],
                expectation: mu,
                std: self.rule_rsd[j] * mu,
            });
        }
        let p = input.classifier_output.clamp(0.0, 1.0);
        let bucket = self.output_bucket(p);
        out.push(FeatureContribution {
            description: format!("classifier_output = {p:.3}"),
            weight: self.influence.weight(p),
            expectation: p,
            std: self.output_rsd[bucket] * p,
        });
        out
    }

    /// Total number of learnable parameters.
    pub fn param_count(&self) -> usize {
        // rule weights + rule RSDs + α + β + bucket RSDs
        2 * self.features.len() + 2 + self.output_rsd.len()
    }

    /// Checks the structural invariants a trained model must satisfy before it
    /// can be served: parameter vectors aligned with the feature set, a
    /// non-degenerate influence function and a usable VaR confidence level.
    ///
    /// Serving loads models from external artifacts, so a corrupt or
    /// hand-edited file must be rejected with a description of what is wrong
    /// rather than panicking (or silently mis-scoring) at request time.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.features.len();
        for (what, len) in [
            ("rule_weights", self.rule_weights.len()),
            ("rule_rsd", self.rule_rsd.len()),
            ("feature expectations", self.features.expectations.len()),
            ("feature support", self.features.support.len()),
        ] {
            if len != n {
                return Err(format!("{what} has {len} entries but the model has {n} rule features"));
            }
        }
        let buckets = self.config.output_buckets.max(1);
        if self.output_rsd.len() != buckets {
            return Err(format!(
                "output_rsd has {} entries but the config declares {buckets} buckets",
                self.output_rsd.len()
            ));
        }
        for (what, values) in [
            ("rule_weights", &self.rule_weights),
            ("rule_rsd", &self.rule_rsd),
            ("feature expectations", &self.features.expectations),
            ("output_rsd", &self.output_rsd),
        ] {
            if let Some(bad) = values.iter().find(|v| !v.is_finite()) {
                return Err(format!("{what} contains a non-finite value {bad}"));
            }
        }
        for (ri, rule) in self.features.rules.iter().enumerate() {
            if let Some(cond) = rule.conditions.iter().find(|c| !c.threshold.is_finite()) {
                // A NaN threshold never matches offline (`v <= NaN` is false)
                // but would confuse the serving engine's sorted threshold
                // index, so reject it outright.
                return Err(format!(
                    "rule {ri} has a non-finite condition threshold {} on metric {}",
                    cond.threshold, cond.metric_index
                ));
            }
        }
        if !(self.influence.alpha.is_finite() && self.influence.alpha > 0.0) {
            return Err(format!(
                "influence alpha must be positive, got {}",
                self.influence.alpha
            ));
        }
        if !self.influence.beta.is_finite() {
            return Err(format!("influence beta must be finite, got {}", self.influence.beta));
        }
        if !(self.config.theta > 0.0 && self.config.theta < 1.0) {
            return Err(format!("theta must lie in (0, 1), got {}", self.config.theta));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_base::Label;
    use er_rulegen::{CmpOp, Condition, Rule};

    fn feature_set() -> RiskFeatureSet {
        // Rule 0: strong inequivalence evidence (μ ≈ 0.02);
        // Rule 1: strong equivalence evidence (μ ≈ 0.97).
        let rules = vec![
            Rule::new(vec![Condition::new(0, CmpOp::Gt, 0.5)], Label::Inequivalent, 50, 0.98),
            Rule::new(vec![Condition::new(1, CmpOp::Gt, 0.5)], Label::Equivalent, 40, 0.97),
        ];
        let metrics = vec![
            er_similarity::AttrMetric {
                attr_index: 3,
                attr_name: "year".into(),
                kind: er_similarity::MetricKind::NumericNotEqual,
            },
            er_similarity::AttrMetric {
                attr_index: 0,
                attr_name: "title".into(),
                kind: er_similarity::MetricKind::Jaccard,
            },
        ];
        RiskFeatureSet {
            rules,
            metrics,
            expectations: vec![0.02, 0.97],
            support: vec![50, 40],
        }
    }

    fn input(rules: Vec<u32>, output: f64, says_match: bool) -> PairRiskInput {
        PairRiskInput {
            rule_indices: rules,
            classifier_output: output,
            machine_says_match: says_match,
            risk_label: 0,
        }
    }

    #[test]
    fn contradicting_rule_raises_risk() {
        let model = LearnRiskModel::new(feature_set(), RiskModelConfig::default());
        // Machine says match with 0.9 confidence, but rule 0 (inequivalence
        // evidence) fires: risk must exceed the same pair without the rule.
        let with_rule = model.risk_score(&input(vec![0], 0.9, true));
        let without_rule = model.risk_score(&input(vec![], 0.9, true));
        assert!(with_rule > without_rule, "{with_rule} vs {without_rule}");
        // Symmetrically for an unmatch-labeled pair and equivalence evidence.
        let with_rule_u = model.risk_score(&input(vec![1], 0.1, false));
        let without_rule_u = model.risk_score(&input(vec![], 0.1, false));
        assert!(with_rule_u > without_rule_u);
    }

    #[test]
    fn agreeing_rule_lowers_risk() {
        let model = LearnRiskModel::new(feature_set(), RiskModelConfig::default());
        let agree = model.risk_score(&input(vec![0], 0.1, false));
        let ambiguous = model.risk_score(&input(vec![], 0.5, false));
        assert!(agree < ambiguous);
    }

    #[test]
    fn distribution_and_scores_are_bounded() {
        let model = LearnRiskModel::new(feature_set(), RiskModelConfig::default());
        for inp in [
            input(vec![], 0.0, false),
            input(vec![0, 1], 0.5, true),
            input(vec![1], 1.0, true),
        ] {
            let d = model.pair_distribution(&inp);
            assert!((0.0..=1.0).contains(&d.mean));
            assert!(d.variance >= 0.0);
            let score = model.risk_score(&inp);
            assert!((0.0..=1.0).contains(&score), "score {score}");
            let t = model.pair_truncated(&inp);
            assert!(t.quantile(0.9) <= 1.0);
        }
    }

    #[test]
    fn output_bucketing_covers_the_range() {
        let model = LearnRiskModel::new(feature_set(), RiskModelConfig::default());
        assert_eq!(model.output_bucket(0.0), 0);
        assert_eq!(model.output_bucket(1.0), model.output_rsd.len() - 1);
        assert_eq!(model.output_bucket(0.55), 5);
        assert_eq!(model.output_bucket(-3.0), 0);
        assert_eq!(model.output_bucket(7.0), model.output_rsd.len() - 1);
    }

    #[test]
    fn explanation_lists_every_active_feature() {
        let model = LearnRiskModel::new(feature_set(), RiskModelConfig::default());
        let expl = model.explain(&input(vec![0, 1], 0.8, true));
        assert_eq!(expl.len(), 3);
        assert!(expl[2].description.contains("classifier_output"));
        assert!(expl.iter().all(|c| c.weight > 0.0));
        assert!((expl[0].expectation - 0.02).abs() < 1e-12);
    }

    #[test]
    fn param_count_is_consistent() {
        let model = LearnRiskModel::new(feature_set(), RiskModelConfig::default());
        assert_eq!(model.param_count(), 2 * 2 + 2 + 10);
        assert!(model.z_theta() > 1.2 && model.z_theta() < 1.3);
    }

    #[test]
    fn buffered_scoring_is_bit_identical_to_plain_scoring() {
        let model = LearnRiskModel::new(feature_set(), RiskModelConfig::default());
        let mut block = ComponentBlock::new();
        for inp in [
            input(vec![], 0.0, false),
            input(vec![0], 0.9, true),
            input(vec![0, 1], 0.5, true),
            input(vec![1], 1.0, false),
        ] {
            let plain = model.risk_score(&inp);
            let buffered = model.risk_score_with(&inp, &mut block);
            assert_eq!(plain.to_bits(), buffered.to_bits());
            // Reuse across calls must not leak state.
            let again = model.risk_score_with(&inp, &mut block);
            assert_eq!(plain.to_bits(), again.to_bits());
            // The fallible path computes the identical score.
            let fallible = model.try_risk_score_with(&inp, &mut block).expect("valid portfolio");
            assert_eq!(plain.to_bits(), fallible.to_bits());
        }
    }

    #[test]
    fn soa_block_matches_aos_components() {
        let model = LearnRiskModel::new(feature_set(), RiskModelConfig::default());
        let mut block = ComponentBlock::new();
        for inp in [
            input(vec![], 0.3, false),
            input(vec![0], 0.9, true),
            input(vec![0, 1], 0.5, true),
        ] {
            let comps = model.components(&inp);
            model.components_into_block(&inp, &mut block);
            assert_eq!(block.len(), comps.len());
            for (j, c) in comps.iter().enumerate() {
                assert_eq!(block.component(j), *c, "component {j}");
            }
            let aos = aggregate(&comps);
            let soa = block.aggregate();
            assert_eq!(aos.mean.to_bits(), soa.mean.to_bits());
            assert_eq!(aos.variance.to_bits(), soa.variance.to_bits());
        }
    }

    #[test]
    fn training_score_is_stable_across_buffer_reuse() {
        let model = LearnRiskModel::new(feature_set(), RiskModelConfig::default());
        let z = model.z_theta();
        let mut block = ComponentBlock::new();
        for inp in [
            input(vec![], 0.0, false),
            input(vec![0], 0.9, true),
            input(vec![0, 1], 0.5, true),
            input(vec![1], 1.0, false),
        ] {
            let fresh = model.training_score_with(&inp, &mut ComponentBlock::new());
            let buffered = model.training_score_with(&inp, &mut block);
            let hoisted = model.training_score_with_z(&inp, z, &mut block);
            assert_eq!(fresh.to_bits(), buffered.to_bits());
            assert_eq!(fresh.to_bits(), hoisted.to_bits());
            assert!(fresh.is_finite());
        }
    }

    #[test]
    fn validate_accepts_fresh_models_and_flags_corruption() {
        let model = LearnRiskModel::new(feature_set(), RiskModelConfig::default());
        assert_eq!(model.validate(), Ok(()));

        let mut truncated = model.clone();
        truncated.rule_weights.pop();
        assert!(truncated.validate().unwrap_err().contains("rule_weights"));

        let mut nan = model.clone();
        nan.rule_rsd[0] = f64::NAN;
        assert!(nan.validate().unwrap_err().contains("non-finite"));

        let mut bad_buckets = model.clone();
        bad_buckets.output_rsd.pop();
        assert!(bad_buckets.validate().unwrap_err().contains("buckets"));

        let mut bad_threshold = model.clone();
        bad_threshold.features.rules[0].conditions[0].threshold = f64::NAN;
        assert!(bad_threshold.validate().unwrap_err().contains("threshold"));

        let mut bad_expectation = model.clone();
        bad_expectation.features.expectations[1] = f64::INFINITY;
        assert!(bad_expectation.validate().unwrap_err().contains("expectations"));

        let mut bad_theta = model;
        bad_theta.config.theta = 1.5;
        assert!(bad_theta.validate().unwrap_err().contains("theta"));
    }

    #[test]
    fn rank_orders_obviously_risky_pairs_above_safe_ones() {
        // Even before training, the prior model must rank a pair whose rule
        // evidence contradicts the machine label, and a pair with an ambiguous
        // classifier output, above a pair where everything agrees.
        let model = LearnRiskModel::new(feature_set(), RiskModelConfig::default());
        let inputs = vec![
            input(vec![0], 0.95, true), // match label contradicted by a rule: risky
            input(vec![1], 0.95, true), // everything agrees: safe
            input(vec![], 0.52, true),  // ambiguous output: risky
        ];
        let scores = model.rank(&inputs);
        assert!(scores[0] > scores[1], "{scores:?}");
        assert!(scores[2] > scores[1], "{scores:?}");
    }
}
