//! `gateway_smoke` — a seconds-fast end-to-end check of the gateway path:
//! two in-process `er-serve` backends behind an in-process `er-gateway`,
//! scoring a small batch bit-exactly through the hop, then one full canary
//! rollback cycle on an injected divergent artifact.
//!
//! Exits non-zero on any failure; prints `gateway smoke OK` on success, so
//! `scripts/kick-tires.sh` can grep for it.

use er_base::Label;
use er_gateway::{CanaryConfig, GatewayConfig, GatewayServer};
use er_rulegen::{CmpOp, Condition, Rule};
use er_serve::{
    http_roundtrip, parse_score_response, ModelArtifact, ReloadableExecutor, ScoreRequest, ScoreServer, ScoringEngine,
    ServeConfig, ServerConfig,
};
use learnrisk_core::{LearnRiskModel, RiskFeatureSet, RiskModelConfig};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn tiny_model() -> LearnRiskModel {
    let rules = vec![
        Rule::new(vec![Condition::new(0, CmpOp::Gt, 0.5)], Label::Inequivalent, 12, 0.9),
        Rule::new(vec![Condition::new(1, CmpOp::Le, 0.4)], Label::Equivalent, 8, 0.85),
    ];
    let feature_set = RiskFeatureSet {
        rules,
        metrics: vec![],
        expectations: vec![0.1, 0.9],
        support: vec![12, 8],
    };
    LearnRiskModel::new(feature_set, RiskModelConfig::default())
}

fn divergent_model() -> LearnRiskModel {
    let mut model = tiny_model();
    for (i, w) in model.rule_weights.iter_mut().enumerate() {
        *w *= if i % 2 == 0 { 1.07 } else { 0.93 };
    }
    model
}

fn start_backend(artifact_path: &std::path::Path) -> ScoreServer {
    let artifact = ModelArtifact::load(artifact_path).expect("load artifact");
    let executor = Arc::new(
        ReloadableExecutor::from_artifact(artifact, ServeConfig::default().with_threads(1)).expect("executor"),
    );
    ScoreServer::start(executor, ServerConfig::default()).expect("bind backend")
}

fn request(pair_id: u64) -> ScoreRequest {
    let x = (pair_id % 10) as f64 / 10.0;
    ScoreRequest {
        pair_id,
        metric_row: vec![x, 1.0 - x],
        classifier_output: x,
        machine_says_match: x >= 0.5,
    }
}

fn main() {
    let scratch = std::env::temp_dir().join(format!("er-gateway-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("scratch dir");
    let baseline = scratch.join("baseline.json");
    let divergent = scratch.join("divergent.json");
    ModelArtifact::new(tiny_model()).save(&baseline).expect("save baseline");
    ModelArtifact::new(divergent_model())
        .save(&divergent)
        .expect("save divergent");

    let backend_a = start_backend(&baseline);
    let backend_b = start_backend(&baseline);
    let gateway = GatewayServer::start(GatewayConfig {
        backends: vec![backend_a.local_addr(), backend_b.local_addr()],
        canary_backends: vec![1],
        baseline_artifact: baseline.display().to_string(),
        health_interval: Duration::from_millis(100),
        connect_timeout: Duration::from_millis(500),
        canary: CanaryConfig {
            shadow_sample_bp: 10_000,
            min_samples: 8,
            divergence_threshold: 1e-9,
            ladder: vec![2_000],
            auto_advance: true,
        },
        ..GatewayConfig::default()
    })
    .expect("start gateway");

    // Bit-exact relay: every score through the gateway matches the
    // in-process engine bit for bit.
    let engine = ScoringEngine::new(tiny_model());
    let mut conn = TcpStream::connect(gateway.local_addr()).expect("connect gateway");
    for pair_id in 0..32u64 {
        let req = request(pair_id);
        let expected = engine.score_batch(std::slice::from_ref(&req));
        let body = serde::json::to_string(&req);
        let response = http_roundtrip(&mut conn, "POST", "/score", Some(&body)).expect("score round trip");
        assert_eq!(response.status, 200, "{}", response.body);
        let (_, scores) = parse_score_response(&response.body).expect("score body");
        assert_eq!(scores.len(), 1);
        assert_eq!(
            scores[0].to_bits(),
            expected[0].to_bits(),
            "pair {pair_id}: gateway relay diverged from in-process scoring"
        );
    }
    println!("gateway smoke: 32 scores bit-exact through the hop");

    // Canary rollback: load the divergent artifact, drive traffic, and the
    // shadow comparison must fire an automatic rollback with zero errors.
    let reload_body = format!(
        "{{\"path\": {}}}",
        serde::json::to_string(&divergent.display().to_string())
    );
    let reload = http_roundtrip(&mut conn, "POST", "/reload", Some(&reload_body)).expect("reload");
    assert_eq!(reload.status, 200, "{}", reload.body);
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut pair_id = 0u64;
    loop {
        let body = serde::json::to_string(&request(pair_id));
        let response = http_roundtrip(&mut conn, "POST", "/score", Some(&body)).expect("canary-cycle score");
        assert_eq!(
            response.status, 200,
            "rollback cycle must not degrade traffic: {}",
            response.body
        );
        pair_id += 1;
        let stats = gateway.stats();
        if stats.canary.rollbacks >= 1 {
            assert_eq!(stats.canary.phase, "stable");
            assert_eq!(
                stats.backends[0].model_digest, stats.backends[1].model_digest,
                "canary backend not restored to the baseline artifact"
            );
            break;
        }
        assert!(Instant::now() < deadline, "rollback never fired: {:?}", stats.canary);
    }
    println!("gateway smoke: divergent canary rolled back automatically after {pair_id} requests");

    let _ = std::fs::remove_dir_all(&scratch);
    println!("gateway smoke OK");
}
