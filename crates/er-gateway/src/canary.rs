//! Staged canary promotion with automatic rollback on score divergence.
//!
//! The controller is a pure state machine over three phases; the gateway
//! server performs the side effects (reloading backends over HTTP) and
//! feeds observations back in:
//!
//! ```text
//!          begin()             loaded()            advance()         advance() … last rung
//! Stable ─────────▶ Loading ────────────▶ Shadow ───────────▶ Serving(p₀) ─▶ … ─▶ Promote
//!    ▲                 │                    │                      │
//!    └── load failed ◀─┴──── rollback ◀────┴──── divergence ───────┘
//! ```
//!
//! * **Loading**: the candidate is being pushed onto the canary backends;
//!   routing stays 100% baseline and *no* comparisons are recorded — a
//!   canary backend mid-reload still serves the baseline, and comparing
//!   baseline against baseline would count zero-divergence samples toward a
//!   verdict the candidate never earned.
//! * **Shadow**: every request is served by a baseline backend; a sampled
//!   slice is *also* sent to a canary backend and the two score vectors are
//!   compared bit-by-bit. The canary's answers are never returned to
//!   clients.
//! * **Serving(p)**: pair ids whose [`crate::ring::percent_slot`] falls
//!   below `p` (basis points) are served by canary backends; comparisons
//!   continue on the baseline slice so late divergence is still caught.
//! * A rung's verdict needs [`CanaryConfig::min_samples`] comparisons:
//!   mean |Δscore| above [`CanaryConfig::divergence_threshold`] rolls back,
//!   below it advances to the next rung (when auto-advance is on).
//!
//! Rollback and promotion swap *routing* and hot-reload backends in place —
//! no listener restarts, so no severed connections either way.

use serde::Serialize;
use std::sync::Mutex;

/// Tuning for the canary ladder.
#[derive(Debug, Clone)]
pub struct CanaryConfig {
    /// Basis points (`0..10_000`) of traffic shadow-compared while the
    /// canary is live (both phases).
    pub shadow_sample_bp: u32,
    /// Comparisons required before a rung verdict.
    pub min_samples: u64,
    /// Mean absolute score divergence above which the canary rolls back.
    pub divergence_threshold: f64,
    /// Serving rungs in basis points, e.g. `[500, 2500, 5000]` for
    /// 5% → 25% → 50%; passing the last rung promotes to 100%.
    pub ladder: Vec<u32>,
    /// Advance rungs automatically when a verdict passes; off means each
    /// rung waits for an operator `POST /canary/promote`.
    pub auto_advance: bool,
}

impl Default for CanaryConfig {
    fn default() -> Self {
        Self {
            shadow_sample_bp: 2_000,
            min_samples: 64,
            divergence_threshold: 1e-9,
            ladder: vec![500, 2_500, 5_000],
            auto_advance: true,
        }
    }
}

/// Where the canary stands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Phase {
    /// No canary in flight; every backend serves the baseline artifact.
    Stable,
    /// The candidate is being loaded onto the canary backends; traffic is
    /// 100% baseline and no comparisons are recorded yet.
    Loading,
    /// Canary backends hold the candidate; traffic is still 100% baseline,
    /// a sampled slice is shadow-compared.
    Shadow,
    /// Canary serves `ladder[rung]` basis points of the keyspace.
    Serving {
        /// Index into [`CanaryConfig::ladder`].
        rung: usize,
    },
}

/// What the gateway should do with one request, given the current phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoutePlan {
    /// Serve from the canary backend set (else baseline).
    pub serve_canary: bool,
    /// Also send the request to the *other* set and record a comparison.
    pub shadow_compare: bool,
}

/// Side effect the server must perform after a state transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// No side effect; routing percentages changed only.
    None,
    /// Divergence verdict: reload canary backends back to the baseline
    /// artifact at this path.
    RollbackCanaries {
        /// Artifact every canary backend must return to.
        baseline_path: String,
    },
    /// Final rung passed: reload the remaining baseline backends to the
    /// candidate at this path; the candidate becomes the new baseline.
    PromoteBaselines {
        /// Artifact the fleet converges on.
        candidate_path: String,
    },
}

/// Serializable snapshot for `/gateway/stats` and the bench attestations.
#[derive(Debug, Clone, Serialize)]
pub struct CanaryStatus {
    /// `"stable"`, `"loading"`, `"shadow"` or `"serving"`.
    pub phase: String,
    /// Canary share of the keyspace in basis points (0 outside Serving).
    pub percent_bp: u32,
    /// Candidate artifact path, when a canary is in flight.
    pub candidate_path: Option<String>,
    /// Comparisons recorded toward the current rung's verdict.
    pub comparisons: u64,
    /// Mean |Δscore| across the current rung's comparisons.
    pub mean_abs_divergence: f64,
    /// Largest single |Δscore| seen in the current rung.
    pub max_abs_divergence: f64,
    /// Canaries rolled back since the gateway started.
    pub rollbacks: u64,
    /// Canaries promoted to baseline since the gateway started.
    pub promotions: u64,
}

struct Inner {
    phase: Phase,
    candidate_path: Option<String>,
    baseline_path: String,
    comparisons: u64,
    sum_abs: f64,
    max_abs: f64,
    rollbacks: u64,
    promotions: u64,
}

/// The canary state machine. All methods are cheap and lock one mutex; the
/// heavy work (backend reloads) happens in the [`Action`]s the caller runs.
pub struct CanaryController {
    config: CanaryConfig,
    inner: Mutex<Inner>,
}

impl CanaryController {
    /// A controller starting Stable on `baseline_path`.
    pub fn new(config: CanaryConfig, baseline_path: String) -> Self {
        Self {
            config,
            inner: Mutex::new(Inner {
                phase: Phase::Stable,
                candidate_path: None,
                baseline_path,
                comparisons: 0,
                sum_abs: 0.0,
                max_abs: 0.0,
                rollbacks: 0,
                promotions: 0,
            }),
        }
    }

    /// The configured ladder and thresholds.
    pub fn config(&self) -> &CanaryConfig {
        &self.config
    }

    /// Starts a canary for `candidate_path`: the controller enters Loading
    /// and waits for [`Self::loaded`] before any comparison counts. Errors
    /// when one is already in flight — finish or roll it back first.
    pub fn begin(&self, candidate_path: String) -> Result<(), String> {
        let mut inner = self.lock();
        if inner.phase != Phase::Stable {
            return Err(format!(
                "a canary for {:?} is already in flight; promote or roll it back first",
                inner.candidate_path.as_deref().unwrap_or("<unknown>")
            ));
        }
        inner.phase = Phase::Loading;
        inner.candidate_path = Some(candidate_path);
        inner.comparisons = 0;
        inner.sum_abs = 0.0;
        inner.max_abs = 0.0;
        Ok(())
    }

    /// Marks the candidate as loaded on every canary backend: Loading →
    /// Shadow, and comparisons start counting. No-op outside Loading.
    pub fn loaded(&self) {
        let mut inner = self.lock();
        if inner.phase == Phase::Loading {
            inner.phase = Phase::Shadow;
        }
    }

    /// Routing plan for one pair id under the current phase.
    pub fn plan(&self, percent_slot: u32) -> RoutePlan {
        let inner = self.lock();
        match inner.phase {
            Phase::Stable | Phase::Loading => RoutePlan {
                serve_canary: false,
                shadow_compare: false,
            },
            Phase::Shadow => RoutePlan {
                serve_canary: false,
                shadow_compare: percent_slot < self.config.shadow_sample_bp,
            },
            Phase::Serving { rung } => {
                let percent = self.config.ladder.get(rung).copied().unwrap_or(0);
                let serve_canary = percent_slot < percent;
                RoutePlan {
                    serve_canary,
                    // Keep comparing on a baseline-served slice adjacent to
                    // the canary share, so late divergence still trips.
                    shadow_compare: !serve_canary
                        && percent_slot < percent.saturating_add(self.config.shadow_sample_bp),
                }
            }
        }
    }

    /// Records one shadow comparison (scores already parsed). Returns the
    /// side effect to run, if the verdict fired: rollback on divergence, a
    /// rung advance (possibly promotion) on a pass when auto-advance is on.
    pub fn record_comparison(&self, baseline: &[f64], canary: &[f64]) -> Action {
        let mut inner = self.lock();
        if matches!(inner.phase, Phase::Stable | Phase::Loading) {
            return Action::None;
        }
        for (b, c) in baseline.iter().zip(canary.iter()) {
            let diff = (b - c).abs();
            inner.sum_abs += diff;
            inner.max_abs = inner.max_abs.max(diff);
            inner.comparisons += 1;
        }
        if inner.comparisons < self.config.min_samples {
            return Action::None;
        }
        let mean = inner.sum_abs / inner.comparisons as f64;
        if mean > self.config.divergence_threshold {
            return self.rollback_locked(&mut inner);
        }
        if self.config.auto_advance {
            return self.advance_locked(&mut inner);
        }
        Action::None
    }

    /// Operator-driven rung advance (`POST /canary/promote`). Errors when
    /// no canary is in flight.
    pub fn advance(&self) -> Result<Action, String> {
        let mut inner = self.lock();
        match inner.phase {
            Phase::Stable => return Err("no canary in flight".to_string()),
            Phase::Loading => return Err("canary candidate still loading".to_string()),
            _ => {}
        }
        Ok(self.advance_locked(&mut inner))
    }

    /// Operator-driven rollback (`POST /canary/rollback`). Errors when no
    /// canary is in flight.
    pub fn rollback(&self) -> Result<Action, String> {
        let mut inner = self.lock();
        match inner.phase {
            Phase::Stable => return Err("no canary in flight".to_string()),
            Phase::Loading => return Err("canary candidate still loading".to_string()),
            _ => {}
        }
        Ok(self.rollback_locked(&mut inner))
    }

    /// Marks a [`Action::PromoteBaselines`] as applied: the candidate is
    /// the new baseline and the controller returns to Stable.
    pub fn promoted(&self) {
        let mut inner = self.lock();
        if let Some(candidate) = inner.candidate_path.take() {
            inner.baseline_path = candidate;
        }
        inner.phase = Phase::Stable;
        inner.promotions += 1;
    }

    /// Marks a [`Action::RollbackCanaries`] as applied (or failed —
    /// either way the canary is dead): back to Stable on the baseline.
    pub fn rolled_back(&self) {
        let mut inner = self.lock();
        inner.phase = Phase::Stable;
        inner.candidate_path = None;
        inner.rollbacks += 1;
    }

    /// The artifact path every backend should serve when Stable.
    pub fn baseline_path(&self) -> String {
        self.lock().baseline_path.clone()
    }

    /// Current status snapshot.
    pub fn status(&self) -> CanaryStatus {
        let inner = self.lock();
        let (phase, percent_bp) = match inner.phase {
            Phase::Stable => ("stable", 0),
            Phase::Loading => ("loading", 0),
            Phase::Shadow => ("shadow", 0),
            Phase::Serving { rung } => ("serving", self.config.ladder.get(rung).copied().unwrap_or(0)),
        };
        CanaryStatus {
            phase: phase.to_string(),
            percent_bp,
            candidate_path: inner.candidate_path.clone(),
            comparisons: inner.comparisons,
            mean_abs_divergence: if inner.comparisons == 0 {
                0.0
            } else {
                inner.sum_abs / inner.comparisons as f64
            },
            max_abs_divergence: inner.max_abs,
            rollbacks: inner.rollbacks,
            promotions: inner.promotions,
        }
    }

    fn advance_locked(&self, inner: &mut Inner) -> Action {
        inner.comparisons = 0;
        inner.sum_abs = 0.0;
        inner.max_abs = 0.0;
        let next = match inner.phase {
            Phase::Stable | Phase::Loading => return Action::None,
            Phase::Shadow => 0,
            Phase::Serving { rung } => rung + 1,
        };
        if next >= self.config.ladder.len() {
            let candidate = inner.candidate_path.clone().unwrap_or_default();
            return Action::PromoteBaselines {
                candidate_path: candidate,
            };
        }
        inner.phase = Phase::Serving { rung: next };
        Action::None
    }

    fn rollback_locked(&self, inner: &mut Inner) -> Action {
        Action::RollbackCanaries {
            baseline_path: inner.baseline_path.clone(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(threshold: f64, min_samples: u64) -> CanaryController {
        CanaryController::new(
            CanaryConfig {
                shadow_sample_bp: 10_000,
                min_samples,
                divergence_threshold: threshold,
                ladder: vec![500, 5_000],
                auto_advance: true,
            },
            "baseline.json".to_string(),
        )
    }

    #[test]
    fn identical_scores_walk_the_full_ladder_to_promotion() {
        let c = controller(1e-9, 4);
        c.begin("candidate.json".to_string()).expect("begin");
        c.loaded();
        assert_eq!(c.status().phase, "shadow");
        // Shadow rung passes → Serving(500).
        assert_eq!(c.record_comparison(&[0.5; 4], &[0.5; 4]), Action::None);
        assert_eq!(c.status().phase, "serving");
        assert_eq!(c.status().percent_bp, 500);
        // Next rung passes → Serving(5000).
        assert_eq!(c.record_comparison(&[0.25; 4], &[0.25; 4]), Action::None);
        assert_eq!(c.status().percent_bp, 5_000);
        // Final rung passes → promote.
        let action = c.record_comparison(&[0.125; 4], &[0.125; 4]);
        assert_eq!(
            action,
            Action::PromoteBaselines {
                candidate_path: "candidate.json".to_string()
            }
        );
        c.promoted();
        let status = c.status();
        assert_eq!(status.phase, "stable");
        assert_eq!(status.promotions, 1);
        assert_eq!(c.baseline_path(), "candidate.json");
    }

    #[test]
    fn divergence_beyond_threshold_rolls_back() {
        let c = controller(1e-3, 4);
        c.begin("candidate.json".to_string()).expect("begin");
        c.loaded();
        let action = c.record_comparison(&[0.5, 0.5, 0.5, 0.5], &[0.5, 0.5, 0.5, 0.9]);
        assert_eq!(
            action,
            Action::RollbackCanaries {
                baseline_path: "baseline.json".to_string()
            }
        );
        c.rolled_back();
        let status = c.status();
        assert_eq!(status.phase, "stable");
        assert_eq!(status.rollbacks, 1);
        assert_eq!(c.baseline_path(), "baseline.json", "candidate never becomes baseline");
    }

    #[test]
    fn sub_threshold_noise_does_not_roll_back() {
        let c = controller(1e-2, 8);
        c.begin("candidate.json".to_string()).expect("begin");
        c.loaded();
        let baseline = [0.5f64; 8];
        let canary = [0.5000001f64; 8];
        // Passes the rung (mean 1e-7 < 1e-2) and advances instead.
        assert_eq!(c.record_comparison(&baseline, &canary), Action::None);
        assert_eq!(c.status().phase, "serving");
    }

    #[test]
    fn no_verdict_before_min_samples() {
        let c = controller(1e-9, 100);
        c.begin("candidate.json".to_string()).expect("begin");
        c.loaded();
        // Wildly divergent, but only 2 of 100 required samples.
        assert_eq!(c.record_comparison(&[0.0, 0.0], &[1.0, 1.0]), Action::None);
        assert_eq!(c.status().phase, "shadow");
        assert_eq!(c.status().comparisons, 2);
    }

    #[test]
    fn loading_phase_neither_compares_nor_advances() {
        let c = controller(1e-9, 1);
        c.begin("candidate.json".to_string()).expect("begin");
        assert_eq!(c.status().phase, "loading");
        let plan = c.plan(0);
        assert!(!plan.serve_canary && !plan.shadow_compare, "loading must stay 100% baseline");
        // Comparisons recorded before the candidate is on the canary
        // backends are baseline-vs-baseline noise: they must not count
        // toward a verdict, let alone advance the ladder.
        assert_eq!(c.record_comparison(&[0.5], &[0.5]), Action::None);
        assert_eq!(c.status().comparisons, 0);
        assert_eq!(c.status().phase, "loading");
        assert!(c.advance().is_err(), "cannot advance a canary that has not loaded");
        assert!(c.rollback().is_err(), "nothing to roll back before the load lands");
        c.loaded();
        assert_eq!(c.status().phase, "shadow");
        // A failed load aborts back to Stable and frees the slot.
        c.rolled_back();
        assert_eq!(c.status().phase, "stable");
        assert!(c.begin("next.json".to_string()).is_ok());
    }

    #[test]
    fn concurrent_canaries_are_refused() {
        let c = controller(1e-9, 4);
        c.begin("a.json".to_string()).expect("begin");
        let err = c.begin("b.json".to_string()).expect_err("second canary refused");
        assert!(err.contains("a.json"), "{err}");
    }

    #[test]
    fn serving_phase_routes_the_percent_slice_to_the_canary() {
        let c = controller(1e-9, 1);
        c.begin("candidate.json".to_string()).expect("begin");
        c.loaded();
        c.record_comparison(&[0.5], &[0.5]); // → Serving(500)
        let plan_low = c.plan(499);
        assert!(plan_low.serve_canary);
        let plan_high = c.plan(501);
        assert!(!plan_high.serve_canary);
        assert!(plan_high.shadow_compare, "adjacent slice keeps comparing");
        let plan_far = c.plan(9_999);
        assert!(!plan_far.serve_canary);
    }

    #[test]
    fn stable_phase_neither_routes_nor_compares() {
        let c = controller(1e-9, 4);
        let plan = c.plan(0);
        assert!(!plan.serve_canary);
        assert!(!plan.shadow_compare);
        assert_eq!(c.record_comparison(&[0.1], &[0.9]), Action::None);
    }

    #[test]
    fn manual_advance_and_rollback_require_a_canary() {
        let c = controller(1e-9, 4);
        assert!(c.advance().is_err());
        assert!(c.rollback().is_err());
        c.begin("candidate.json".to_string()).expect("begin");
        c.loaded();
        assert_eq!(c.advance().expect("advance"), Action::None);
        assert_eq!(c.status().percent_bp, 500);
        let action = c.rollback().expect("rollback");
        assert!(matches!(action, Action::RollbackCanaries { .. }));
    }
}
