//! The train → export → load → score round trip.
//!
//! Bridges the batch experiment pipeline to the `er-serve` online engine:
//! builds serving [`ScoreRequest`]s from pipeline outputs, exports the
//! trained risk model as a versioned artifact and stands a
//! [`ScoringEngine`] back up from it. The round trip is bit-exact — the
//! served scores equal the in-memory model's scores to the last `f64` bit —
//! and [`verify_round_trip`] asserts exactly that, so a deployment can
//! self-check an artifact before taking traffic.

use crate::pipeline::PipelineArtifacts;
use er_base::Pair;
use er_classifier::ErMatcher;
use er_serve::{ArtifactError, ModelArtifact, ScoreRequest, ScoringEngine};
use er_similarity::MetricEvaluator;
use learnrisk_core::LearnRiskModel;
use std::path::Path;

/// Builds serving requests for `pairs`: evaluates the basic-metric rows and
/// attaches the classifier's decision, exactly as an online feature service
/// would. Pair ids are the positions in `pairs`.
pub fn build_score_requests(evaluator: &MetricEvaluator, matcher: &ErMatcher, pairs: &[Pair]) -> Vec<ScoreRequest> {
    let rows = evaluator.eval_pairs(pairs);
    let probs = matcher.predict(pairs);
    rows.into_iter()
        .zip(probs)
        .enumerate()
        .map(|(i, (metric_row, p))| ScoreRequest {
            pair_id: i as u64,
            metric_row,
            classifier_output: p,
            machine_says_match: p >= 0.5,
        })
        .collect()
}

/// Builds serving requests from pre-computed metric rows and classifier
/// outputs (used when the rows already exist, e.g. inside experiments).
pub fn requests_from_rows(rows: &[Vec<f64>], probs: &[f64]) -> Vec<ScoreRequest> {
    assert_eq!(rows.len(), probs.len(), "one probability per metric row");
    rows.iter()
        .zip(probs)
        .enumerate()
        .map(|(i, (metric_row, &p))| ScoreRequest {
            pair_id: i as u64,
            metric_row: metric_row.clone(),
            classifier_output: p,
            machine_says_match: p >= 0.5,
        })
        .collect()
}

/// Exports the pipeline's trained risk model to `path`, loads it back and
/// compiles a serving engine from the *loaded* state — the full persistence
/// round trip a deployment performs.
pub fn export_and_load_engine(
    artifacts: &PipelineArtifacts,
    path: impl AsRef<Path>,
) -> Result<(ModelArtifact, ScoringEngine), ArtifactError> {
    let artifact = ModelArtifact::new(artifacts.risk_model.clone());
    artifact.save(&path)?;
    let loaded = ModelArtifact::load(&path)?;
    Ok((artifact, ScoringEngine::new(loaded.model)))
}

/// In-memory variant of the round trip (serialize → parse → compile) for
/// callers that do not want to touch the filesystem.
pub fn round_trip_engine(model: &LearnRiskModel) -> Result<ScoringEngine, ArtifactError> {
    let artifact = ModelArtifact::new(model.clone());
    let restored = ModelArtifact::from_json(&artifact.to_json())?;
    Ok(ScoringEngine::new(restored.model))
}

/// Checks that the engine (typically reloaded from an artifact) reproduces
/// the in-memory model's scores bit-exactly on `requests`. Returns the first
/// disagreement as `(request index, served score, reference score)`.
pub fn verify_round_trip(
    reference: &LearnRiskModel,
    engine: &ScoringEngine,
    requests: &[ScoreRequest],
) -> Result<(), (usize, f64, f64)> {
    let reference_engine = ScoringEngine::new(reference.clone());
    let mut ref_scratch = reference_engine.scratch();
    let mut scratch = engine.scratch();
    for (i, request) in requests.iter().enumerate() {
        let served = engine.score_request(request, &mut scratch);
        let expected = reference_engine.score_request(request, &mut ref_scratch);
        if served.to_bits() != expected.to_bits() {
            return Err((i, served, expected));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{run_pipeline, PipelineConfig};
    use er_base::SplitRatio;
    use er_classifier::{MatcherKind, TrainConfig};
    use er_datasets::{generate_benchmark, BenchmarkId};
    use learnrisk_core::RiskTrainConfig;

    fn small_artifacts() -> (crate::pipeline::PipelineResult, PipelineArtifacts, Vec<Pair>) {
        let ds = generate_benchmark(BenchmarkId::DblpScholar, 0.02, 99);
        let config = PipelineConfig {
            matcher: MatcherKind::Logistic,
            matcher_config: TrainConfig {
                epochs: 15,
                ..Default::default()
            },
            risk_train_config: RiskTrainConfig {
                epochs: 30,
                ..Default::default()
            },
            ensemble_members: 3,
            ..Default::default()
        };
        let (result, artifacts) = run_pipeline(&ds.workload, SplitRatio::new(3, 2, 5), &config);
        let pairs = ds.workload.pairs().to_vec();
        (result, artifacts, pairs)
    }

    #[test]
    fn trained_model_round_trips_through_disk_bit_exactly() {
        let (_, artifacts, pairs) = small_artifacts();
        let pool = build_score_requests(&artifacts.evaluator, &artifacts.matcher, &pairs[..60.min(pairs.len())]);
        assert!(!pool.is_empty());

        let path = std::env::temp_dir().join("er-eval-serving-test").join("model.json");
        let (artifact, engine) = export_and_load_engine(&artifacts, &path).expect("export/load");
        assert_eq!(artifact.model.features.len(), artifacts.risk_model.features.len());
        verify_round_trip(&artifacts.risk_model, &engine, &pool).unwrap_or_else(|(i, served, expected)| {
            panic!("request {i} diverged after reload: served {served}, expected {expected}")
        });
        std::fs::remove_dir_all(path.parent().expect("has parent")).ok();
    }

    #[test]
    fn in_memory_round_trip_matches_too() {
        let (_, artifacts, pairs) = small_artifacts();
        let pool = build_score_requests(&artifacts.evaluator, &artifacts.matcher, &pairs[..40.min(pairs.len())]);
        let engine = round_trip_engine(&artifacts.risk_model).expect("round trip");
        assert!(verify_round_trip(&artifacts.risk_model, &engine, &pool).is_ok());
    }

    #[test]
    fn requests_from_rows_aligns_ids_and_decisions() {
        let rows = vec![vec![0.1, 0.9], vec![0.8, 0.2]];
        let probs = vec![0.3, 0.7];
        let reqs = requests_from_rows(&rows, &probs);
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[0].pair_id, 0);
        assert!(!reqs[0].machine_says_match);
        assert!(reqs[1].machine_says_match);
        assert_eq!(reqs[1].metric_row, vec![0.8, 0.2]);
    }
}
