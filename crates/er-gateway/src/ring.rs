//! Consistent-hash ring over backend indices.
//!
//! Each backend contributes `vnodes` points to a sorted ring of
//! `(hash, backend)` pairs; a pair id routes to the first point clockwise
//! from its own hash whose backend passes the caller's eligibility check
//! (healthy, right artifact version set, …). Because only the ejected
//! backend's points drop out of consideration, an ejection remaps only the
//! keys that hashed to that backend — the property that keeps backend score
//! caches warm through a failure, which a modulo router would destroy.
//!
//! The canary percent split uses an *independent* hash of the same pair id
//! ([`percent_slot`]), so the slice of traffic a canary serves is
//! uncorrelated with backend placement.

/// `splitmix64`: the 64-bit finalizer used for every ring hash. Public so
/// tests and benches can reproduce routing decisions.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Basis-point granularity of [`percent_slot`]: slots are `0..10_000`.
pub const PERCENT_SLOTS: u32 = 10_000;

/// Which `0..10_000` slice of the keyspace a pair id falls in, for the
/// canary percent split. Salted differently from the ring hash so "the 5%
/// canary slice" is spread evenly across every backend's key range.
pub fn percent_slot(pair_id: u64) -> u32 {
    (splitmix64(pair_id ^ 0x5bd1_e995_9d4d_51cb) % u64::from(PERCENT_SLOTS)) as u32
}

/// A fixed consistent-hash ring over `backends` backend indices.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Sorted `(point hash, backend index)` pairs.
    points: Vec<(u64, usize)>,
    backends: usize,
}

impl HashRing {
    /// Builds a ring with `vnodes` points per backend. More vnodes smooth
    /// the per-backend keyspace share (128 keeps the spread within a few
    /// percent of uniform); fewer make remapping coarser.
    pub fn new(backends: usize, vnodes: usize) -> Self {
        let mut points = Vec::with_capacity(backends * vnodes);
        for backend in 0..backends {
            for vnode in 0..vnodes {
                // One well-mixed point per (backend, vnode): hash the pair
                // through two rounds so neighboring ids land far apart.
                let seed = ((backend as u64) << 32) | vnode as u64;
                points.push((splitmix64(splitmix64(seed)), backend));
            }
        }
        points.sort_unstable();
        points.dedup_by_key(|(h, _)| *h);
        Self { points, backends }
    }

    /// Number of backends the ring was built over.
    pub fn backends(&self) -> usize {
        self.backends
    }

    /// Routes a pair id: the first point clockwise from `hash(pair_id)`
    /// whose backend satisfies `eligible`. Returns `None` only when no
    /// backend is eligible at all.
    pub fn route(&self, pair_id: u64, mut eligible: impl FnMut(usize) -> bool) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let hash = splitmix64(pair_id);
        let start = self.points.partition_point(|&(point, _)| point < hash);
        for offset in 0..self.points.len() {
            let (_, backend) = self.points[(start + offset) % self.points.len()];
            if eligible(backend) {
                return Some(backend);
            }
        }
        None
    }

    /// The backend after `exclude` on the ring for this pair id — the hedge
    /// target: deterministic, distinct from the primary, and still
    /// eligibility-filtered. `None` when no other backend qualifies.
    pub fn route_excluding(
        &self,
        pair_id: u64,
        exclude: usize,
        mut eligible: impl FnMut(usize) -> bool,
    ) -> Option<usize> {
        self.route(pair_id, |backend| backend != exclude && eligible(backend))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn keyspace_share_is_roughly_uniform() {
        let ring = HashRing::new(4, 128);
        let mut counts = HashMap::new();
        for pair_id in 0..40_000u64 {
            let backend = ring.route(pair_id, |_| true).expect("route");
            *counts.entry(backend).or_insert(0usize) += 1;
        }
        for backend in 0..4 {
            let share = counts[&backend] as f64 / 40_000.0;
            assert!((0.15..=0.35).contains(&share), "backend {backend} share {share}");
        }
    }

    #[test]
    fn ejection_remaps_only_the_ejected_backends_keys() {
        let ring = HashRing::new(4, 128);
        let before: Vec<usize> = (0..10_000u64)
            .map(|id| ring.route(id, |_| true).expect("route"))
            .collect();
        let after: Vec<usize> = (0..10_000u64)
            .map(|id| ring.route(id, |b| b != 2).expect("route"))
            .collect();
        for (id, (&b, &a)) in before.iter().zip(after.iter()).enumerate() {
            if b != 2 {
                assert_eq!(b, a, "pair {id} moved although its backend stayed healthy");
            } else {
                assert_ne!(a, 2, "pair {id} still routed to the ejected backend");
            }
        }
    }

    #[test]
    fn routing_is_deterministic_and_percent_slots_cover_the_space() {
        let ring = HashRing::new(3, 64);
        for pair_id in 0..1000u64 {
            assert_eq!(ring.route(pair_id, |_| true), ring.route(pair_id, |_| true));
        }
        let mut below_500 = 0usize;
        for pair_id in 0..100_000u64 {
            let slot = percent_slot(pair_id);
            assert!(slot < PERCENT_SLOTS);
            if slot < 500 {
                below_500 += 1;
            }
        }
        let share = below_500 as f64 / 100_000.0;
        assert!((0.04..=0.06).contains(&share), "5% slice share {share}");
    }

    #[test]
    fn hedge_target_differs_from_primary() {
        let ring = HashRing::new(3, 64);
        for pair_id in 0..1000u64 {
            let primary = ring.route(pair_id, |_| true).expect("primary");
            let hedge = ring.route_excluding(pair_id, primary, |_| true).expect("hedge");
            assert_ne!(primary, hedge);
        }
    }

    #[test]
    fn single_backend_ring_routes_everything_to_it() {
        let ring = HashRing::new(1, 32);
        for pair_id in 0..100u64 {
            assert_eq!(ring.route(pair_id, |_| true), Some(0));
            assert_eq!(ring.route_excluding(pair_id, 0, |_| true), None);
        }
    }
}
