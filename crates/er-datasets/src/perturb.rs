//! Perturbation operators that make duplicate records *dirty*.
//!
//! Real ER benchmarks are hard because the two descriptions of the same entity
//! differ: typos, dropped tokens, abbreviated names, missing attributes,
//! inconsistent numeric values.  The generators apply these operators to the
//! clean entity view with per-dataset probabilities (the *dirtiness profile*),
//! which controls how often a classifier will be wrong — exactly the signal
//! risk analysis must pick up.

use er_base::AttrValue;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Per-attribute perturbation probabilities.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DirtinessProfile {
    /// Probability of introducing a character-level typo into a random token.
    pub typo: f64,
    /// Probability of dropping one token from a multi-token value.
    pub token_drop: f64,
    /// Probability of appending an extraneous token.
    pub token_add: f64,
    /// Probability of abbreviating (first letters of the leading tokens).
    pub abbreviate: f64,
    /// Probability of nulling the value entirely.
    pub missing: f64,
    /// Probability of shifting a numeric value.
    pub numeric_shift: f64,
    /// Probability of reordering tokens (e.g. "surname, given name").
    pub reorder: f64,
}

impl DirtinessProfile {
    /// A clean profile: no perturbation at all.
    pub const CLEAN: DirtinessProfile = DirtinessProfile {
        typo: 0.0,
        token_drop: 0.0,
        token_add: 0.0,
        abbreviate: 0.0,
        missing: 0.0,
        numeric_shift: 0.0,
        reorder: 0.0,
    };

    /// A lightly dirty profile (well-curated sources such as DBLP or ACM).
    pub const LIGHT: DirtinessProfile = DirtinessProfile {
        typo: 0.03,
        token_drop: 0.03,
        token_add: 0.02,
        abbreviate: 0.05,
        missing: 0.02,
        numeric_shift: 0.02,
        reorder: 0.05,
    };

    /// A moderately dirty profile (web-scraped sources such as Google Scholar
    /// or online retailers).
    pub const MODERATE: DirtinessProfile = DirtinessProfile {
        typo: 0.10,
        token_drop: 0.12,
        token_add: 0.08,
        abbreviate: 0.15,
        missing: 0.08,
        numeric_shift: 0.06,
        reorder: 0.10,
    };

    /// A heavily dirty profile (noisy product feeds, user-generated content).
    pub const HEAVY: DirtinessProfile = DirtinessProfile {
        typo: 0.18,
        token_drop: 0.22,
        token_add: 0.15,
        abbreviate: 0.20,
        missing: 0.15,
        numeric_shift: 0.12,
        reorder: 0.15,
    };

    /// Scales every probability by `factor`, clamped to `[0, 1]`.
    pub fn scaled(&self, factor: f64) -> DirtinessProfile {
        let clamp = |p: f64| (p * factor).clamp(0.0, 1.0);
        DirtinessProfile {
            typo: clamp(self.typo),
            token_drop: clamp(self.token_drop),
            token_add: clamp(self.token_add),
            abbreviate: clamp(self.abbreviate),
            missing: clamp(self.missing),
            numeric_shift: clamp(self.numeric_shift),
            reorder: clamp(self.reorder),
        }
    }
}

/// Introduces a single character-level typo (substitution, deletion, insertion
/// or adjacent transposition) into a random position of the string.
pub fn typo<R: Rng + ?Sized>(rng: &mut R, s: &str) -> String {
    let chars: Vec<char> = s.chars().collect();
    if chars.is_empty() {
        return s.to_owned();
    }
    let pos = rng.gen_range(0..chars.len());
    let mut out = chars.clone();
    match rng.gen_range(0..4u8) {
        0 => {
            // substitution with a nearby letter
            out[pos] = random_letter(rng);
        }
        1 => {
            // deletion
            out.remove(pos);
        }
        2 => {
            // insertion
            out.insert(pos, random_letter(rng));
        }
        _ => {
            // adjacent transposition
            if pos + 1 < out.len() {
                out.swap(pos, pos + 1);
            } else if pos > 0 {
                out.swap(pos - 1, pos);
            }
        }
    }
    out.into_iter().collect()
}

fn random_letter<R: Rng + ?Sized>(rng: &mut R) -> char {
    (b'a' + rng.gen_range(0..26u8)) as char
}

/// Drops one random token from a multi-token string.
pub fn drop_token<R: Rng + ?Sized>(rng: &mut R, s: &str) -> String {
    let toks: Vec<&str> = s.split(' ').filter(|t| !t.is_empty()).collect();
    if toks.len() <= 1 {
        return s.to_owned();
    }
    let victim = rng.gen_range(0..toks.len());
    toks.iter()
        .enumerate()
        .filter(|(i, _)| *i != victim)
        .map(|(_, t)| *t)
        .collect::<Vec<_>>()
        .join(" ")
}

/// Appends an extra token to the string.
pub fn add_token<R: Rng + ?Sized>(rng: &mut R, s: &str, pool: &[&str]) -> String {
    if pool.is_empty() {
        return s.to_owned();
    }
    let extra = pool[rng.gen_range(0..pool.len())];
    if s.is_empty() {
        extra.to_owned()
    } else {
        format!("{s} {extra}")
    }
}

/// Abbreviates the given-name parts of a person name, e.g.
/// `"hans kriegel"` → `"h kriegel"`.
pub fn abbreviate_name(s: &str) -> String {
    let toks: Vec<&str> = s.split(' ').filter(|t| !t.is_empty()).collect();
    if toks.len() <= 1 {
        return s.to_owned();
    }
    let mut out: Vec<String> = Vec::with_capacity(toks.len());
    for (i, t) in toks.iter().enumerate() {
        if i + 1 == toks.len() {
            out.push((*t).to_owned());
        } else {
            out.push(t.chars().take(1).collect());
        }
    }
    out.join(" ")
}

/// Reorders a person name into `"surname given"` order.
pub fn reorder_name(s: &str) -> String {
    let toks: Vec<&str> = s.split(' ').filter(|t| !t.is_empty()).collect();
    if toks.len() <= 1 {
        return s.to_owned();
    }
    let mut out = vec![*toks.last().unwrap()];
    out.extend_from_slice(&toks[..toks.len() - 1]);
    out.join(" ")
}

/// Applies the profile to a free-text value, returning a perturbed copy.
pub fn perturb_text<R: Rng + ?Sized>(
    rng: &mut R,
    value: &str,
    profile: &DirtinessProfile,
    noise_pool: &[&str],
) -> AttrValue {
    if rng.gen_bool(profile.missing) {
        return AttrValue::Null;
    }
    let mut s = value.to_owned();
    if rng.gen_bool(profile.token_drop) {
        s = drop_token(rng, &s);
    }
    if rng.gen_bool(profile.token_add) {
        s = add_token(rng, &s, noise_pool);
    }
    if rng.gen_bool(profile.typo) {
        s = typo(rng, &s);
    }
    AttrValue::Str(s)
}

/// Applies the profile to an entity-set value (e.g. an author list): each
/// entity may be abbreviated or reordered, one entity may be dropped.
pub fn perturb_entity_set<R: Rng + ?Sized>(rng: &mut R, value: &str, profile: &DirtinessProfile) -> AttrValue {
    if rng.gen_bool(profile.missing) {
        return AttrValue::Null;
    }
    let mut names: Vec<String> = value.split(", ").map(str::to_owned).collect();
    if names.len() > 1 && rng.gen_bool(profile.token_drop) {
        let victim = rng.gen_range(0..names.len());
        names.remove(victim);
    }
    for name in names.iter_mut() {
        if rng.gen_bool(profile.abbreviate) {
            *name = abbreviate_name(name);
        }
        if rng.gen_bool(profile.reorder) {
            *name = reorder_name(name);
        }
        if rng.gen_bool(profile.typo) {
            *name = typo(rng, name);
        }
    }
    AttrValue::Str(names.join(", "))
}

/// Applies the profile to an entity-name value (venue, brand, artist).
pub fn perturb_entity_name<R: Rng + ?Sized>(
    rng: &mut R,
    short: &str,
    long: &str,
    profile: &DirtinessProfile,
) -> AttrValue {
    if rng.gen_bool(profile.missing) {
        return AttrValue::Null;
    }
    // Choose between the abbreviation and the expanded form.
    let mut s = if rng.gen_bool(profile.abbreviate) {
        short.to_owned()
    } else {
        long.to_owned()
    };
    if rng.gen_bool(profile.typo) {
        s = typo(rng, &s);
    }
    AttrValue::Str(s)
}

/// Applies the profile to a numeric value.
pub fn perturb_numeric<R: Rng + ?Sized>(
    rng: &mut R,
    value: f64,
    profile: &DirtinessProfile,
    max_shift: f64,
) -> AttrValue {
    if rng.gen_bool(profile.missing) {
        return AttrValue::Null;
    }
    if rng.gen_bool(profile.numeric_shift) {
        let shift = rng.gen_range(1.0..=max_shift.max(1.0));
        let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
        AttrValue::Num(value + sign * shift)
    } else {
        AttrValue::Num(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_base::rng::seeded;

    #[test]
    fn typo_changes_string_but_not_too_much() {
        let mut rng = seeded(1);
        let original = "entity resolution";
        let mut changed = 0;
        for _ in 0..50 {
            let t = typo(&mut rng, original);
            let dist = er_similarity::edit::levenshtein(original, &t);
            assert!(dist <= 2, "typo should be a single edit (distance {dist})");
            if dist > 0 {
                changed += 1;
            }
        }
        assert!(changed > 40, "typos should usually change the string");
        assert_eq!(typo(&mut rng, ""), "");
    }

    #[test]
    fn drop_token_removes_exactly_one() {
        let mut rng = seeded(2);
        let s = "a b c d";
        let dropped = drop_token(&mut rng, s);
        assert_eq!(dropped.split(' ').count(), 3);
        assert_eq!(drop_token(&mut rng, "single"), "single");
    }

    #[test]
    fn add_token_appends() {
        let mut rng = seeded(3);
        let s = add_token(&mut rng, "sony camera", &["bundle", "kit"]);
        assert_eq!(s.split(' ').count(), 3);
        assert_eq!(add_token(&mut rng, "x", &[]), "x");
        assert_eq!(add_token(&mut rng, "", &["solo"]), "solo");
    }

    #[test]
    fn abbreviate_and_reorder_names() {
        assert_eq!(abbreviate_name("hans peter kriegel"), "h p kriegel");
        assert_eq!(abbreviate_name("cher"), "cher");
        assert_eq!(reorder_name("hans kriegel"), "kriegel hans");
        assert_eq!(reorder_name("solo"), "solo");
    }

    #[test]
    fn clean_profile_is_identity_for_text() {
        let mut rng = seeded(4);
        let v = perturb_text(&mut rng, "some value here", &DirtinessProfile::CLEAN, &[]);
        assert_eq!(v.as_str(), Some("some value here"));
        let n = perturb_numeric(&mut rng, 1999.0, &DirtinessProfile::CLEAN, 3.0);
        assert_eq!(n.as_num(), Some(1999.0));
        let e = perturb_entity_set(&mut rng, "a smith, b jones", &DirtinessProfile::CLEAN);
        assert_eq!(e.as_str(), Some("a smith, b jones"));
    }

    #[test]
    fn heavy_profile_produces_missing_values() {
        let mut rng = seeded(5);
        let mut nulls = 0;
        for _ in 0..300 {
            if perturb_text(&mut rng, "abc def", &DirtinessProfile::HEAVY, &[]).is_null() {
                nulls += 1;
            }
        }
        // missing = 0.15 -> expect roughly 45.
        assert!(nulls > 20 && nulls < 80, "nulls {nulls}");
    }

    #[test]
    fn numeric_shift_respects_bound() {
        let mut rng = seeded(6);
        let profile = DirtinessProfile {
            numeric_shift: 1.0,
            missing: 0.0,
            ..DirtinessProfile::CLEAN
        };
        for _ in 0..100 {
            let v = perturb_numeric(&mut rng, 2000.0, &profile, 3.0).as_num().unwrap();
            assert!((v - 2000.0).abs() <= 3.0 + 1e-9);
            assert!((v - 2000.0).abs() >= 1.0 - 1e-9);
        }
    }

    #[test]
    fn entity_name_prefers_long_form_when_not_abbreviating() {
        let mut rng = seeded(7);
        let profile = DirtinessProfile::CLEAN;
        let v = perturb_entity_name(&mut rng, "VLDB", "Very Large Data Bases", &profile);
        assert_eq!(v.as_str(), Some("Very Large Data Bases"));
        let always_abbr = DirtinessProfile {
            abbreviate: 1.0,
            ..DirtinessProfile::CLEAN
        };
        let v = perturb_entity_name(&mut rng, "VLDB", "Very Large Data Bases", &always_abbr);
        assert_eq!(v.as_str(), Some("VLDB"));
    }

    #[test]
    fn scaled_profile_clamps() {
        let p = DirtinessProfile::HEAVY.scaled(10.0);
        assert!(p.token_drop <= 1.0);
        assert!(p.typo <= 1.0);
        let zero = DirtinessProfile::HEAVY.scaled(0.0);
        assert_eq!(zero.typo, 0.0);
    }
}
