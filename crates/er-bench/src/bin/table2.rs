//! Regenerates Table 2 (dataset statistics).
use er_eval::{render_table2, run_table2};

fn main() {
    let config = er_bench::config_from_args(0.05);
    let rows = run_table2(&config);
    println!("{}", render_table2(&rows));
}
