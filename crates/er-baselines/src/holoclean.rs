//! HoloClean adapted for ER risk analysis (Section 7.3 of the paper).
//!
//! HoloClean is a probabilistic data-repair system: it treats rules as
//! integrity constraints over noisy data and infers marginal probabilities of
//! the suggested repairs with a log-linear (factor-graph) model.  Following
//! the paper's adaptation, a candidate pair is a tuple whose noisy cell is the
//! machine label and whose constraints are two-sided labeling rules generated
//! by a random forest.  Each satisfied rule contributes a weighted factor for
//! its class; the machine label contributes a prior factor.  The inferred
//! probability that the machine label is wrong is the pair's risk.

use er_base::stats::sigmoid;
use er_base::Label;
use er_rulegen::Rule;
use serde::{Deserialize, Serialize};

/// Configuration of the HoloClean-style inference.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HoloCleanConfig {
    /// Weight of the machine-label prior factor.
    pub prior_weight: f64,
    /// Cap on the log-odds contributed by a single rule.
    pub max_rule_weight: f64,
}

impl Default for HoloCleanConfig {
    fn default() -> Self {
        Self {
            prior_weight: 1.0,
            max_rule_weight: 4.0,
        }
    }
}

/// The HoloClean-style risk scorer over two-sided labeling rules.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HoloCleanRisk {
    rules: Vec<Rule>,
    /// Log-odds weight of each rule, derived from its training purity.
    rule_weights: Vec<f64>,
    config: HoloCleanConfig,
}

impl HoloCleanRisk {
    /// Builds the scorer from two-sided labeling rules (typically produced by
    /// [`er_rulegen::RandomForest::rules`]).  Each rule's factor weight is the
    /// log-odds of its purity, capped at `max_rule_weight`.
    pub fn new(rules: Vec<Rule>, config: HoloCleanConfig) -> Self {
        let rule_weights = rules
            .iter()
            .map(|r| {
                let p = r.purity.clamp(0.5, 1.0 - 1e-6);
                (p / (1.0 - p)).ln().min(config.max_rule_weight)
            })
            .collect();
        Self {
            rules,
            rule_weights,
            config,
        }
    }

    /// Number of labeling rules used by the inference.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Inferred probability that the pair is a match, combining the machine
    /// label prior and the rule factors.
    pub fn match_probability(&self, metric_row: &[f64], classifier_output: f64) -> f64 {
        // Machine-label prior as log-odds of the classifier output.
        let p = classifier_output.clamp(1e-6, 1.0 - 1e-6);
        let mut logit = self.config.prior_weight * (p / (1.0 - p)).ln();
        for (rule, &w) in self.rules.iter().zip(&self.rule_weights) {
            if rule.covers(metric_row) {
                match rule.target {
                    Label::Equivalent => logit += w,
                    Label::Inequivalent => logit -= w,
                }
            }
        }
        sigmoid(logit)
    }

    /// Risk of a pair: the inferred probability that its machine label is
    /// wrong.
    pub fn risk(&self, metric_row: &[f64], classifier_output: f64, machine_says_match: bool) -> f64 {
        let p_match = self.match_probability(metric_row, classifier_output);
        if machine_says_match {
            1.0 - p_match
        } else {
            p_match
        }
    }

    /// Risk scores for a batch of pairs.
    pub fn scores(
        &self,
        metric_rows: &[Vec<f64>],
        classifier_outputs: &[f64],
        machine_says_match: &[bool],
    ) -> Vec<f64> {
        assert_eq!(metric_rows.len(), classifier_outputs.len());
        assert_eq!(metric_rows.len(), machine_says_match.len());
        metric_rows
            .iter()
            .zip(classifier_outputs)
            .zip(machine_says_match)
            .map(|((row, &p), &m)| self.risk(row, p, m))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_rulegen::{CmpOp, Condition};

    fn rules() -> Vec<Rule> {
        vec![
            // metric 0 high => equivalent (purity 0.95)
            Rule::new(vec![Condition::new(0, CmpOp::Gt, 0.7)], Label::Equivalent, 40, 0.95),
            // metric 1 high => inequivalent (purity 0.99)
            Rule::new(vec![Condition::new(1, CmpOp::Gt, 0.5)], Label::Inequivalent, 60, 0.99),
            // weak rule (purity 0.6)
            Rule::new(vec![Condition::new(2, CmpOp::Gt, 0.5)], Label::Inequivalent, 20, 0.6),
        ]
    }

    #[test]
    fn rule_factors_shift_the_match_probability() {
        let hc = HoloCleanRisk::new(rules(), HoloCleanConfig::default());
        assert_eq!(hc.rule_count(), 3);
        let neutral = hc.match_probability(&[0.0, 0.0, 0.0], 0.5);
        let pro_match = hc.match_probability(&[0.9, 0.0, 0.0], 0.5);
        let anti_match = hc.match_probability(&[0.0, 0.9, 0.0], 0.5);
        assert!((neutral - 0.5).abs() < 1e-9);
        assert!(pro_match > 0.8);
        assert!(anti_match < 0.2);
    }

    #[test]
    fn stronger_rules_have_larger_influence() {
        let hc = HoloCleanRisk::new(rules(), HoloCleanConfig::default());
        let strong = hc.match_probability(&[0.0, 0.9, 0.0], 0.5); // purity 0.99 rule
        let weak = hc.match_probability(&[0.0, 0.0, 0.9], 0.5); // purity 0.6 rule
        assert!(
            strong < weak,
            "the high-purity rule should push harder: {strong} vs {weak}"
        );
    }

    #[test]
    fn risk_flags_label_rule_conflicts() {
        let hc = HoloCleanRisk::new(rules(), HoloCleanConfig::default());
        // Machine says match but the inequivalence rule fires strongly.
        let conflicted = hc.risk(&[0.0, 0.9, 0.0], 0.8, true);
        // Machine says match and the equivalence rule agrees.
        let agreeing = hc.risk(&[0.9, 0.0, 0.0], 0.8, true);
        assert!(conflicted > 0.5);
        assert!(agreeing < 0.2);
        assert!(conflicted > agreeing);
    }

    #[test]
    fn classifier_prior_matters_without_rules() {
        let hc = HoloCleanRisk::new(vec![], HoloCleanConfig::default());
        assert_eq!(hc.rule_count(), 0);
        // With no rules, risk reduces to disagreement with the classifier output.
        assert!(hc.risk(&[], 0.9, false) > hc.risk(&[], 0.1, false));
        assert!((hc.match_probability(&[], 0.7) - 0.7).abs() < 1e-6);
    }

    #[test]
    fn batch_scores_are_bounded() {
        let hc = HoloCleanRisk::new(rules(), HoloCleanConfig::default());
        let rows = vec![vec![0.9, 0.0, 0.0], vec![0.0, 0.9, 0.0], vec![0.0, 0.0, 0.0]];
        let outputs = vec![0.9, 0.9, 0.5];
        let labels = vec![true, true, false];
        let scores = hc.scores(&rows, &outputs, &labels);
        assert_eq!(scores.len(), 3);
        assert!(scores.iter().all(|s| (0.0..=1.0).contains(s)));
        assert!(scores[1] > scores[0]);
    }
}
