//! Edge cases of the readiness-loop front-end: requests that arrive a byte
//! at a time, requests split across many TCP segments, pipelined
//! back-to-back requests sharing one write, clients that vanish mid-request
//! or mid-response, and keep-alive connections that outlive their cap.
//!
//! The invariants under test are the same two the blocking front-end was
//! held to: a well-formed request is **never** answered with a severed
//! connection, and every score that comes back is **bit-identical** to the
//! in-process [`ScoringEngine`] on the same rows — no matter how hostile
//! the client's segmentation is.

use er_base::Label;
use er_rulegen::{CmpOp, Condition, Rule};
use er_serve::{
    http_roundtrip, parse_score_response, read_http_response, ReloadableExecutor, ScoreRequest, ScoreServer,
    ScoringEngine, ServeConfig, ServerConfig,
};
use learnrisk_core::{train, LearnRiskModel, PairRiskInput, RiskFeatureSet, RiskModelConfig, RiskTrainConfig};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

const METRICS: usize = 3;

fn untrained_model() -> LearnRiskModel {
    let rules = vec![
        Rule::new(vec![Condition::new(0, CmpOp::Gt, 0.55)], Label::Inequivalent, 24, 0.95),
        Rule::new(
            vec![Condition::new(1, CmpOp::Le, 0.35), Condition::new(2, CmpOp::Gt, 0.5)],
            Label::Equivalent,
            17,
            0.9,
        ),
        Rule::new(vec![Condition::new(2, CmpOp::Le, 0.25)], Label::Inequivalent, 11, 0.88),
        Rule::new(vec![Condition::new(1, CmpOp::Gt, 0.7)], Label::Equivalent, 9, 0.86),
    ];
    let feature_set = RiskFeatureSet {
        rules,
        metrics: vec![],
        expectations: vec![0.06, 0.91, 0.12, 0.88],
        support: vec![24, 17, 11, 9],
    };
    LearnRiskModel::new(feature_set, RiskModelConfig::default())
}

fn metric_row(i: u64) -> Vec<f64> {
    (0..METRICS)
        .map(|j| ((i as f64) * 0.618_033_988_749_895 + (j as f64) * 0.414_213_562_373_095).fract())
        .collect()
}

fn serving_requests(n: u64) -> Vec<ScoreRequest> {
    (0..n)
        .map(|i| {
            let classifier_output = ((i as f64) * 0.271_828_182_845_904).fract();
            ScoreRequest {
                pair_id: i,
                metric_row: metric_row(i),
                classifier_output,
                machine_says_match: classifier_output >= 0.5,
            }
        })
        .collect()
}

/// A small trained server plus the model it serves, for bit-exactness
/// assertions against the in-process engine.
fn trained_server(config: ServerConfig) -> (ScoreServer, LearnRiskModel) {
    let mut model = untrained_model();
    let engine = ScoringEngine::new(model.clone());
    let inputs: Vec<PairRiskInput> = (0..80u64)
        .map(|i| {
            let row = metric_row(i);
            let classifier_output = ((i as f64) * 0.271_828_182_845_904).fract();
            PairRiskInput {
                rule_indices: engine.index().matching_rules(&row),
                classifier_output,
                machine_says_match: classifier_output >= 0.5,
                risk_label: u8::from(i % 7 == 0),
            }
        })
        .collect();
    train(
        &mut model,
        &inputs,
        &RiskTrainConfig {
            epochs: 10,
            ..Default::default()
        },
    );
    let executor = Arc::new(ReloadableExecutor::new(
        ScoringEngine::new(model.clone()),
        ServeConfig::default().with_threads(1),
    ));
    (ScoreServer::start(executor, config).expect("bind"), model)
}

fn score_request_bytes(body: &str) -> Vec<u8> {
    format!(
        "POST /score HTTP/1.1\r\nHost: er-serve\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

#[test]
fn slow_loris_request_trickled_a_byte_at_a_time_still_scores_bit_exactly() {
    let (server, model) = trained_server(ServerConfig::default());
    let request = &serving_requests(1)[0];
    let expected = ScoringEngine::new(model).score_batch(std::slice::from_ref(request));
    let body = serde::json::to_string(request);
    let bytes = score_request_bytes(&body);

    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    // One byte per write with a pause every few bytes: the request crosses
    // the server in dozens of reads, with the connection parked (not a
    // thread blocked) between them.
    for (i, byte) in bytes.iter().enumerate() {
        stream.write_all(std::slice::from_ref(byte)).expect("trickle byte");
        if i % 16 == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    let response = read_http_response(&mut stream).expect("response after trickled request");
    assert_eq!(response.status, 200, "{}", response.body);
    let (_, scores) = parse_score_response(&response.body).expect("score body");
    assert_eq!(scores[0].to_bits(), expected[0].to_bits(), "trickled score drifted");

    // The connection is still a first-class keep-alive citizen afterwards.
    let again = http_roundtrip(&mut stream, "POST", "/score", Some(&body)).expect("keep-alive survives");
    assert_eq!(again.status, 200, "{}", again.body);
    server.shutdown();
}

#[test]
fn request_split_across_many_segments_is_reassembled() {
    let (server, model) = trained_server(ServerConfig::default());
    // A batch big enough that head and body straddle several 4096-byte
    // driver reads even without artificial pauses.
    let requests = serving_requests(64);
    let expected = ScoringEngine::new(model).score_batch(&requests);
    let body = serde::json::to_string(&requests);
    let bytes = score_request_bytes(&body);

    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    // Segment sizes chosen to split mid-request-line, mid-headers, and
    // mid-body, with pauses so each lands in its own readiness event.
    let mut offset = 0usize;
    for size in [3usize, 9, 40, 256, 1024, usize::MAX] {
        let end = bytes.len().min(offset.saturating_add(size));
        stream.write_all(&bytes[offset..end]).expect("write segment");
        offset = end;
        if offset == bytes.len() {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let response = read_http_response(&mut stream).expect("response after split request");
    assert_eq!(response.status, 200, "{}", response.body);
    let (_, scores) = parse_score_response(&response.body).expect("score body");
    let bits: Vec<u64> = scores.iter().map(|s| s.to_bits()).collect();
    let expected_bits: Vec<u64> = expected.iter().map(|s| s.to_bits()).collect();
    assert_eq!(bits, expected_bits, "reassembled batch drifted");
    server.shutdown();
}

#[test]
fn pipelined_requests_in_one_write_are_answered_in_order() {
    let (server, model) = trained_server(ServerConfig::default());
    let requests = serving_requests(5);
    let expected = ScoringEngine::new(model).score_batch(&requests);

    // All five requests in a single write: the driver must answer them
    // strictly in order, one response per request, none dropped — even
    // though each one parks the connection on the batcher in turn.
    let mut wire = Vec::new();
    for request in &requests {
        wire.extend_from_slice(&score_request_bytes(&serde::json::to_string(request)));
    }
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.write_all(&wire).expect("write pipeline");
    for (i, expected_score) in expected.iter().enumerate() {
        let response = read_http_response(&mut stream).expect("pipelined response");
        assert_eq!(response.status, 200, "response {i}: {}", response.body);
        let (_, scores) = parse_score_response(&response.body).expect("score body");
        assert_eq!(
            scores[0].to_bits(),
            expected_score.to_bits(),
            "pipelined response {i} out of order or drifted"
        );
    }
    server.shutdown();
}

#[test]
fn client_disconnects_are_absorbed_without_poisoning_the_loop() {
    let (server, model) = trained_server(ServerConfig::default());
    let request = &serving_requests(1)[0];
    let expected = ScoringEngine::new(model).score_batch(std::slice::from_ref(request));
    let body = serde::json::to_string(request);
    let bytes = score_request_bytes(&body);

    // Vanish mid-request: half a head, then close.
    let mut mid_request = TcpStream::connect(server.local_addr()).expect("connect");
    mid_request.write_all(&bytes[..10]).expect("partial head");
    drop(mid_request);

    // Vanish mid-response: a full request, then close without reading, so
    // the response (or its tail) hits a dead socket.
    let mut mid_response = TcpStream::connect(server.local_addr()).expect("connect");
    mid_response.write_all(&bytes).expect("full request");
    drop(mid_response);

    std::thread::sleep(Duration::from_millis(50));

    // The loop absorbed both: a fresh connection still scores bit-exactly.
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    let response = http_roundtrip(&mut stream, "POST", "/score", Some(&body)).expect("server survived");
    assert_eq!(response.status, 200, "{}", response.body);
    let (_, scores) = parse_score_response(&response.body).expect("score body");
    assert_eq!(scores[0].to_bits(), expected[0].to_bits());
    server.shutdown();
}

#[test]
fn idle_connections_are_reaped_at_the_lifetime_cap_without_a_request() {
    let (server, _model) = trained_server(ServerConfig {
        max_connection_lifetime: Duration::from_millis(100),
        ..ServerConfig::default()
    });
    // Never sends a byte: only the driver's timer scan can reap it.
    let mut idle = TcpStream::connect(server.local_addr()).expect("connect");
    std::thread::sleep(Duration::from_millis(400));
    assert!(
        http_roundtrip(&mut idle, "GET", "/healthz", None).is_err(),
        "idle connection must be closed at the lifetime cap"
    );
    // The reaped slot is free again for a fresh connection.
    let mut fresh = TcpStream::connect(server.local_addr()).expect("connect");
    let ok = http_roundtrip(&mut fresh, "GET", "/healthz", None).expect("fresh connection serves");
    assert_eq!(ok.status, 200);
    server.shutdown();
}
