//! Offline stand-in for the slice of `rand 0.8` this workspace uses.
//!
//! The build environment cannot reach crates.io, so this crate implements the
//! exact API surface the reproduction calls — `Rng::{gen, gen_range,
//! gen_bool}`, `SeedableRng::{from_seed, seed_from_u64}`, `rngs::StdRng` and
//! `seq::SliceRandom::{shuffle, choose}` — on top of a xoshiro256**
//! generator seeded through SplitMix64. The statistical quality is more than
//! sufficient for the moment/ratio assertions in the seed test suite, and the
//! streams are fully deterministic for a given seed, which the reproduction
//! relies on. Swapping in the real `rand` only requires editing
//! `[workspace.dependencies]` (seeded streams will differ, but no test in the
//! tree pins exact draws).

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next uniformly distributed 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Returns the next uniformly distributed 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The fixed-width seed type.
    type Seed;

    /// Builds the generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that `Rng::gen` can produce with a "standard" distribution
/// (uniform over the full range for integers, uniform in `[0, 1)` for floats,
/// fair coin for `bool`).
pub trait Standard: Sized {
    /// Samples one value from the standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types with a uniform sampler over half-open and closed ranges.
pub trait SampleUniform: Sized {
    /// Samples uniformly from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;

    /// Samples uniformly from `[low, high]`.
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range {low}..{high}");
                let span = (high as i128 - low as i128) as u128;
                // Multiply-shift keeps the modulo bias below 2^-64, far under
                // anything the statistical tests can detect.
                let off = ((rng.next_u64() as u128) * span) >> 64;
                (low as i128 + off as i128) as $t
            }

            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range {low}..={high}");
                let span = (high as i128 - low as i128) as u128 + 1;
                let off = ((rng.next_u64() as u128) * span) >> 64;
                (low as i128 + off as i128) as $t
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range {low}..{high}");
                let unit = <$t as Standard>::sample_standard(rng);
                low + (high - low) * unit
            }

            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range {low}..={high}");
                // Unit sample over [0, 1] *inclusive* (53 bits / (2^53 - 1))
                // so the upper bound of the closed range is reachable.
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                low + (high - low) * unit
            }
        }
    )*};
}

uniform_float!(f32, f64);

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_closed(rng, *self.start(), *self.end())
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution for `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from the given range (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1], got {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            if s == [0; 4] {
                // xoshiro must not start from the all-zero state.
                s = [0x9E37_79B9_7F4A_7C15, 0xBF58_476D_1CE4_E5B9, 0x94D0_49BB_1331_11EB, 1];
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }
}

/// Sequence-related helpers (`rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// Element type of the sequence.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Commonly imported names, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.gen::<u64>()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.gen::<u64>()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(8);
            (0..8).map(|_| r.gen::<u64>()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn unit_floats_are_uniformish() {
        let mut r = StdRng::seed_from_u64(42);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.gen_range(5..8);
            assert!((5..8).contains(&x));
            let y = r.gen_range(1..=3);
            assert!((1..=3).contains(&y));
            let f = r.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(9);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.gen_bool(0.3)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle left the slice in order");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut r = StdRng::seed_from_u64(2);
        let items = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..1000 {
            seen[(items.choose(&mut r).unwrap() - 1) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }
}
