//! `bench_diff` — the CI perf-regression gate.
//!
//! Diffs the current `out/serve_bench.json` + `out/train_bench.json` (+
//! `out/fig13.json` when present) as written by `scripts/kick-tires.sh`
//! against the committed baseline under `out/baseline/`, prints and writes a
//! classification report, and exits non-zero when any metric regresses
//! beyond tolerance.  See [`er_bench::diff`] for the comparison rules (ratio
//! metrics are gated across hardware, absolute metrics only on matching
//! hardware, latency and stage runtimes have absolute noise floors).
//!
//! Usage:
//!
//! ```text
//! bench_diff [--baseline-dir out/baseline] [--current-dir out]
//!            [--tolerance 0.25] [--report out/bench-diff.txt]
//!            [--write-baseline] [--refresh-if-improved] [--dry-run]
//! ```
//!
//! Environment overrides: `BENCH_DIFF_BASELINE_DIR`, `BENCH_DIFF_CURRENT_DIR`,
//! `BENCH_DIFF_TOLERANCE`, `BENCH_DIFF_REPORT`, `BENCH_DIFF_LATENCY_FLOOR_US`,
//! `BENCH_DIFF_RUNTIME_FLOOR_SECS`.
//!
//! `--write-baseline` refreshes the committed baseline from the current
//! files instead of diffing (run it after a PR that intentionally moves
//! performance, then commit the result).
//!
//! `--refresh-if-improved` is the self-tightening mode used by the
//! `baseline-refresh` workflow: it runs the normal diff, and *only* when the
//! gate passes with at least one metric improved beyond the noise floor does
//! it rewrite the baseline files (which the workflow then turns into a PR).
//! With `--dry-run` it reports the same decision without touching any file —
//! grep the output for `baseline-refresh:` to read the verdict.
//!
//! Exit codes: 0 = pass, 1 = regression detected, 2 = setup error (missing
//! or malformed input files).

use er_bench::diff::{diff_all, DiffConfig};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Args {
    baseline_dir: PathBuf,
    current_dir: PathBuf,
    config: DiffConfig,
    report_path: PathBuf,
    write_baseline: bool,
    refresh_if_improved: bool,
    dry_run: bool,
}

fn env_or(name: &str, default: &str) -> String {
    std::env::var(name).unwrap_or_else(|_| default.to_string())
}

fn parse_args() -> Result<Args, String> {
    let mut baseline_dir = PathBuf::from(env_or("BENCH_DIFF_BASELINE_DIR", "out/baseline"));
    let mut current_dir = PathBuf::from(env_or("BENCH_DIFF_CURRENT_DIR", "out"));
    let mut report_path = PathBuf::from(env_or("BENCH_DIFF_REPORT", "out/bench-diff.txt"));
    let mut config = DiffConfig::default();
    if let Ok(raw) = std::env::var("BENCH_DIFF_TOLERANCE") {
        config.tolerance = raw
            .trim()
            .parse()
            .map_err(|_| format!("bad BENCH_DIFF_TOLERANCE {raw:?}"))?;
    }
    if let Ok(raw) = std::env::var("BENCH_DIFF_LATENCY_FLOOR_US") {
        config.latency_floor_us = raw
            .trim()
            .parse()
            .map_err(|_| format!("bad BENCH_DIFF_LATENCY_FLOOR_US {raw:?}"))?;
    }
    if let Ok(raw) = std::env::var("BENCH_DIFF_RUNTIME_FLOOR_SECS") {
        config.runtime_floor_secs = raw
            .trim()
            .parse()
            .map_err(|_| format!("bad BENCH_DIFF_RUNTIME_FLOOR_SECS {raw:?}"))?;
    }
    let mut write_baseline = false;
    let mut refresh_if_improved = false;
    let mut dry_run = false;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value_of = |flag: &str| iter.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--baseline-dir" => baseline_dir = PathBuf::from(value_of("--baseline-dir")?),
            "--current-dir" => current_dir = PathBuf::from(value_of("--current-dir")?),
            "--report" => report_path = PathBuf::from(value_of("--report")?),
            "--tolerance" => {
                let raw = value_of("--tolerance")?;
                config.tolerance = raw.trim().parse().map_err(|_| format!("bad --tolerance {raw:?}"))?;
            }
            "--write-baseline" => write_baseline = true,
            "--refresh-if-improved" => refresh_if_improved = true,
            "--dry-run" => dry_run = true,
            other => return Err(format!("unrecognized argument {other:?}")),
        }
    }
    if write_baseline && refresh_if_improved {
        return Err("--write-baseline and --refresh-if-improved are mutually exclusive".into());
    }
    Ok(Args {
        baseline_dir,
        current_dir,
        config,
        report_path,
        write_baseline,
        refresh_if_improved,
        dry_run,
    })
}

fn read(dir: &Path, file: &str) -> Result<String, String> {
    let path = dir.join(file);
    std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "cannot read {}: {e} (run scripts/kick-tires.sh to produce current results, \
             or bench_diff --write-baseline to seed the baseline)",
            path.display()
        )
    })
}

/// Reads an optional benchmark file — `None` when it does not exist, an
/// error for any other failure (a permission problem must not silently
/// disarm the fig13 gate).
fn read_opt(dir: &Path, file: &str) -> Result<Option<String>, String> {
    let path = dir.join(file);
    match std::fs::read_to_string(&path) {
        Ok(text) => Ok(Some(text)),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(format!("cannot read {}: {e}", path.display())),
    }
}

fn write_baseline(args: &Args) -> Result<(), String> {
    std::fs::create_dir_all(&args.baseline_dir).map_err(|e| format!("create {}: {e}", args.baseline_dir.display()))?;
    for file in ["serve_bench.json", "train_bench.json", "fig13.json"] {
        let from = args.current_dir.join(file);
        let to = args.baseline_dir.join(file);
        if file == "fig13.json" && !from.exists() {
            // fig13 only runs in the full suite; a kick-tires-only refresh
            // keeps whatever fig13 baseline is already committed.
            println!("bench_diff: {} not present, baseline kept as-is", from.display());
            continue;
        }
        std::fs::copy(&from, &to).map_err(|e| format!("copy {} -> {}: {e}", from.display(), to.display()))?;
        println!("bench_diff: refreshed {}", to.display());
    }
    println!(
        "bench_diff: baseline refreshed — commit {} to adopt it",
        args.baseline_dir.display()
    );
    Ok(())
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    if args.write_baseline {
        write_baseline(&args)?;
        return Ok(true);
    }
    let fig13_baseline = read_opt(&args.baseline_dir, "fig13.json")?;
    let fig13_current = read_opt(&args.current_dir, "fig13.json")?;
    let report = diff_all(
        &read(&args.baseline_dir, "serve_bench.json")?,
        &read(&args.current_dir, "serve_bench.json")?,
        &read(&args.baseline_dir, "train_bench.json")?,
        &read(&args.current_dir, "train_bench.json")?,
        fig13_baseline.as_deref(),
        fig13_current.as_deref(),
        &args.config,
    )?;
    let rendered = format!(
        "bench_diff: {} vs baseline {} (tolerance {:.0}%, latency floor {}µs, runtime floor {}s)\n\n{}",
        args.current_dir.display(),
        args.baseline_dir.display(),
        args.config.tolerance * 100.0,
        args.config.latency_floor_us,
        args.config.runtime_floor_secs,
        report
    );
    print!("{rendered}");
    if let Some(parent) = args.report_path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| format!("create {}: {e}", parent.display()))?;
        }
    }
    std::fs::write(&args.report_path, &rendered).map_err(|e| format!("write {}: {e}", args.report_path.display()))?;
    println!("bench_diff: wrote {}", args.report_path.display());

    let regressions = report.regressions().len();
    let improvements = report.improvements().len();
    if args.refresh_if_improved {
        // The self-tightening decision, in grep-able form for the
        // baseline-refresh workflow: refresh only when the gate passes AND
        // something moved beyond the noise floor — a within-tolerance
        // baseline rewrite would just launder jitter into the committed
        // numbers.
        if regressions > 0 {
            println!("bench_diff: baseline-refresh: BLOCKED ({regressions} regressions — fix before refreshing)");
        } else if improvements == 0 {
            println!("bench_diff: baseline-refresh: NOT NEEDED (no improvement beyond tolerance)");
        } else if args.dry_run {
            println!("bench_diff: baseline-refresh: DRY RUN — would refresh ({improvements} metrics improved)");
        } else {
            println!("bench_diff: baseline-refresh: REFRESHING ({improvements} metrics improved)");
            write_baseline(&args)?;
        }
    }
    Ok(regressions == 0)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(message) => {
            eprintln!("bench_diff: {message}");
            ExitCode::from(2)
        }
    }
}
