//! Criterion benches wrapping the figure/table experiment runners at a small
//! scale, so every table and figure of the paper has a `cargo bench` target
//! (the corresponding binaries regenerate the full series; these benches track
//! end-to-end runtime and act as smoke tests under `cargo bench`).

use criterion::{criterion_group, criterion_main, Criterion};
use er_base::SplitRatio;
use er_datasets::BenchmarkId;
use er_eval::{
    run_fig10_workload, run_fig12, run_fig13, run_fig14, run_fig9_cell, run_table2, ExperimentConfig, OodWorkload,
};

fn tiny() -> ExperimentConfig {
    ExperimentConfig {
        scale: 0.012,
        seed: 2020,
    }
}

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper/table2");
    group.sample_size(10);
    group.bench_function("dataset_statistics", |b| {
        b.iter(|| std::hint::black_box(run_table2(&tiny())))
    });
    group.finish();
}

fn bench_fig9(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper/fig9");
    group.sample_size(10);
    group.bench_function("ds_3_2_5_cell", |b| {
        b.iter(|| {
            std::hint::black_box(run_fig9_cell(
                BenchmarkId::DblpScholar,
                SplitRatio::new(3, 2, 5),
                &tiny(),
            ))
        })
    });
    group.finish();
}

fn bench_fig10(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper/fig10");
    group.sample_size(10);
    group.bench_function("da2ds_ood", |b| {
        b.iter(|| std::hint::black_box(run_fig10_workload(OodWorkload::Da2Ds, &tiny())))
    });
    group.finish();
}

fn bench_fig11(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper/fig11");
    group.sample_size(10);
    group.bench_function("holoclean_comparison_one_subset", |b| {
        b.iter(|| std::hint::black_box(er_eval::run_fig11(&tiny(), 1)))
    });
    group.finish();
}

fn bench_fig12(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper/fig12");
    group.sample_size(10);
    group.bench_function("sensitivity_sweep", |b| {
        b.iter(|| std::hint::black_box(run_fig12(&tiny())))
    });
    group.finish();
}

fn bench_fig13(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper/fig13");
    group.sample_size(10);
    group.bench_function("scalability_two_sizes", |b| {
        b.iter(|| std::hint::black_box(run_fig13(&tiny(), &[200, 400], &[1, 2])))
    });
    group.finish();
}

fn bench_fig14(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper/fig14");
    group.sample_size(10);
    group.bench_function("active_learning_one_round", |b| {
        b.iter(|| std::hint::black_box(run_fig14(&tiny(), 1)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_table2,
    bench_fig9,
    bench_fig10,
    bench_fig11,
    bench_fig12,
    bench_fig13,
    bench_fig14
);
criterion_main!(benches);
