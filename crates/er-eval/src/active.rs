//! Active learning for ER classifier training (Section 8 / Figure 14).
//!
//! The paper's final experiment uses risk analysis to *select training
//! instances*: starting from a small labeled seed, the classifier is
//! iteratively retrained after acquiring a batch of pairs chosen by a
//! selection strategy.  The compared strategies are `LeastConfidence`,
//! `Entropy` and `LearnRisk` (select the pairs with the highest risk).

use crate::pipeline::build_inputs_from_labeled;
use er_base::stats::{clamp_prob, safe_ln};
use er_base::{Label, LabeledWorkload, Pair, Schema};
use er_classifier::{ErMatcher, MatcherKind, TrainConfig};
use er_rulegen::OneSidedTreeConfig;
use er_similarity::MetricEvaluator;
use learnrisk_core::{train as train_risk, LearnRiskModel, RiskFeatureSet, RiskModelConfig, RiskTrainConfig};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::sync::Arc;

/// Pair-selection strategy for active learning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SelectionStrategy {
    /// Select the pairs whose classifier output is closest to 0.5.
    LeastConfidence,
    /// Select the pairs with the highest output entropy.
    Entropy,
    /// Select the pairs with the highest LearnRisk risk score.
    LearnRisk,
}

impl SelectionStrategy {
    /// Name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            SelectionStrategy::LeastConfidence => "LeastConfidence",
            SelectionStrategy::Entropy => "Entropy",
            SelectionStrategy::LearnRisk => "LearnRisk",
        }
    }
}

/// Configuration of the active-learning experiment.
#[derive(Debug, Clone)]
pub struct ActiveLearningConfig {
    /// Size of the initial labeled seed (the paper uses 128).
    pub initial_labeled: usize,
    /// Batch size per acquisition round (the paper uses 64).
    pub batch_size: usize,
    /// Number of acquisition rounds.
    pub rounds: usize,
    /// Classifier architecture and training hyper-parameters.
    pub matcher: MatcherKind,
    /// Classifier training configuration.
    pub matcher_config: TrainConfig,
    /// Rule generation configuration for the LearnRisk strategy.
    pub rule_config: OneSidedTreeConfig,
    /// Risk-model training configuration for the LearnRisk strategy.
    pub risk_train_config: RiskTrainConfig,
    /// Random seed.
    pub seed: u64,
}

impl Default for ActiveLearningConfig {
    fn default() -> Self {
        Self {
            initial_labeled: 128,
            batch_size: 64,
            rounds: 9,
            matcher: MatcherKind::Logistic,
            matcher_config: TrainConfig {
                epochs: 30,
                ..Default::default()
            },
            rule_config: OneSidedTreeConfig::default(),
            risk_train_config: RiskTrainConfig {
                epochs: 60,
                ..Default::default()
            },
            seed: 29,
        }
    }
}

/// One measurement point of the active-learning curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ActiveLearningPoint {
    /// Number of labeled training pairs at this point.
    pub labeled: usize,
    /// Classifier F1 on the held-out test pool.
    pub f1: f64,
}

/// The learning curve of one selection strategy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ActiveLearningCurve {
    /// Strategy name.
    pub strategy: String,
    /// Measurement points, one per round (including the seed round).
    pub points: Vec<ActiveLearningPoint>,
}

impl ActiveLearningCurve {
    /// Final F1 reached at the end of the curve.
    pub fn final_f1(&self) -> f64 {
        self.points.last().map(|p| p.f1).unwrap_or(0.0)
    }

    /// Area under the learning curve (mean F1 across rounds) — a compact
    /// "label efficiency" summary.
    pub fn mean_f1(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|p| p.f1).sum::<f64>() / self.points.len() as f64
    }
}

fn entropy_score(p: f64) -> f64 {
    let p = clamp_prob(p);
    -(p * safe_ln(p) + (1.0 - p) * safe_ln(1.0 - p))
}

/// Runs the active-learning loop for one strategy on a labeled pool / test
/// split and returns its learning curve.
///
/// `pool` simulates the unlabeled pool (ground truth revealed on selection);
/// `test` is the held-out evaluation set.
pub fn run_active_learning(
    schema: Arc<Schema>,
    pool: &[Pair],
    test: &[Pair],
    strategy: SelectionStrategy,
    config: &ActiveLearningConfig,
) -> ActiveLearningCurve {
    assert!(pool.len() > config.initial_labeled, "pool must exceed the initial seed");
    let mut rng = er_base::rng::substream(config.seed, 0xA0);
    let mut labeled_idx: HashSet<usize> = {
        use rand::seq::SliceRandom;
        let mut all: Vec<usize> = (0..pool.len()).collect();
        all.shuffle(&mut rng);
        all.into_iter().take(config.initial_labeled).collect()
    };

    let mut points = Vec::with_capacity(config.rounds + 1);
    for round in 0..=config.rounds {
        let labeled: Vec<Pair> = labeled_idx.iter().map(|&i| pool[i].clone()).collect();
        // Ensure both classes are present; if not, the matcher would be degenerate.
        let has_both = labeled.iter().any(|p| p.truth.is_match()) && labeled.iter().any(|p| !p.truth.is_match());
        let evaluator = MetricEvaluator::from_pairs(Arc::clone(&schema), &labeled);
        let mut matcher = ErMatcher::new(evaluator.clone(), config.matcher, config.matcher_config);
        if has_both {
            matcher.train(&labeled);
        } else {
            // Degenerate seed: skip training this round (predicts 0.5 everywhere).
            matcher.train(&labeled);
        }
        let test_labeled = matcher.label_workload("al-test", test);
        points.push(ActiveLearningPoint {
            labeled: labeled.len(),
            f1: test_labeled.classifier_f1(),
        });

        if round == config.rounds {
            break;
        }

        // Score the remaining pool and select the next batch.
        let unlabeled: Vec<usize> = (0..pool.len()).filter(|i| !labeled_idx.contains(i)).collect();
        if unlabeled.is_empty() {
            break;
        }
        let unlabeled_pairs: Vec<Pair> = unlabeled.iter().map(|&i| pool[i].clone()).collect();
        let outputs = matcher.predict(&unlabeled_pairs);
        let scores: Vec<f64> = match strategy {
            SelectionStrategy::LeastConfidence => outputs.iter().map(|&p| 0.5 - (p - 0.5).abs()).collect(),
            SelectionStrategy::Entropy => outputs.iter().map(|&p| entropy_score(p)).collect(),
            SelectionStrategy::LearnRisk => {
                learnrisk_selection_scores(&evaluator, &matcher, &labeled, &unlabeled_pairs, &outputs, config)
            }
        };
        let mut order: Vec<usize> = (0..unlabeled.len()).collect();
        order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap_or(std::cmp::Ordering::Equal));
        for &k in order.iter().take(config.batch_size) {
            labeled_idx.insert(unlabeled[k]);
        }
    }

    ActiveLearningCurve {
        strategy: strategy.name().to_owned(),
        points,
    }
}

/// Risk scores of the unlabeled pool under a LearnRisk model trained on the
/// currently labeled data (the classifier's own labels on the labeled set act
/// as risk-training signal).
fn learnrisk_selection_scores(
    evaluator: &MetricEvaluator,
    matcher: &ErMatcher,
    labeled: &[Pair],
    unlabeled: &[Pair],
    unlabeled_outputs: &[f64],
    config: &ActiveLearningConfig,
) -> Vec<f64> {
    // Generate risk features from the labeled data.
    let rows = evaluator.eval_pairs(labeled);
    let labels: Vec<Label> = labeled.iter().map(|p| p.truth).collect();
    let rules = er_rulegen::generate_rules(&rows, &labels, config.rule_config);
    let feature_set = RiskFeatureSet::from_training(rules, evaluator.metrics().to_vec(), &rows, &labels);
    let mut model = LearnRiskModel::new(feature_set, RiskModelConfig::default());

    // Risk-train on the labeled data using the classifier's own decisions.
    let labeled_probs = matcher.predict(labeled);
    let labeled_workload = LabeledWorkload::from_probabilities("al-labeled", labeled.to_vec(), &labeled_probs);
    let risk_inputs = build_inputs_from_labeled(evaluator, &model.features, &labeled_workload);
    train_risk(&mut model, &risk_inputs, &config.risk_train_config);

    // Score the unlabeled pool (risk labels unknown, set to 0 — unused).
    let unlabeled_workload = LabeledWorkload::from_probabilities("al-pool", unlabeled.to_vec(), unlabeled_outputs);
    let pool_inputs = build_inputs_from_labeled(evaluator, &model.features, &unlabeled_workload);
    model.rank(&pool_inputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_datasets::{generate_benchmark, BenchmarkId};

    #[test]
    fn learning_curves_improve_with_more_labels() {
        let ds = generate_benchmark(BenchmarkId::DblpScholar, 0.02, 51);
        let pairs = ds.workload.pairs();
        let n_pool = pairs.len() / 2;
        let pool = &pairs[..n_pool];
        let test = &pairs[n_pool..];
        let config = ActiveLearningConfig {
            rounds: 3,
            matcher_config: TrainConfig {
                epochs: 20,
                ..Default::default()
            },
            ..Default::default()
        };
        let curve = run_active_learning(
            ds.workload.left_schema.clone(),
            pool,
            test,
            SelectionStrategy::LeastConfidence,
            &config,
        );
        assert_eq!(curve.points.len(), 4);
        assert_eq!(curve.points[0].labeled, 128);
        assert_eq!(curve.points[3].labeled, 128 + 3 * 64);
        // The final classifier should be no worse than the 128-seed classifier
        // by a wide margin (allow small noise).
        assert!(curve.final_f1() >= curve.points[0].f1 - 0.05, "{:?}", curve.points);
        assert!(curve.mean_f1() > 0.0);
    }

    #[test]
    fn all_strategies_produce_curves() {
        let ds = generate_benchmark(BenchmarkId::DblpScholar, 0.015, 52);
        let pairs = ds.workload.pairs();
        let n_pool = pairs.len() / 2;
        let pool = &pairs[..n_pool];
        let test = &pairs[n_pool..];
        let config = ActiveLearningConfig {
            rounds: 2,
            matcher_config: TrainConfig {
                epochs: 15,
                ..Default::default()
            },
            risk_train_config: RiskTrainConfig {
                epochs: 25,
                ..Default::default()
            },
            ..Default::default()
        };
        for strategy in [
            SelectionStrategy::LeastConfidence,
            SelectionStrategy::Entropy,
            SelectionStrategy::LearnRisk,
        ] {
            let curve = run_active_learning(ds.workload.left_schema.clone(), pool, test, strategy, &config);
            assert_eq!(curve.strategy, strategy.name());
            assert_eq!(curve.points.len(), 3);
            assert!(curve.points.iter().all(|p| (0.0..=1.0).contains(&p.f1)));
        }
    }

    #[test]
    #[should_panic(expected = "pool must exceed")]
    fn tiny_pool_panics() {
        let ds = generate_benchmark(BenchmarkId::DblpScholar, 0.01, 53);
        let pairs = ds.workload.pairs();
        let config = ActiveLearningConfig {
            initial_labeled: 10_000,
            ..Default::default()
        };
        run_active_learning(
            ds.workload.left_schema.clone(),
            &pairs[..100],
            &pairs[100..200],
            SelectionStrategy::Entropy,
            &config,
        );
    }
}
