//! Offline stand-in for the slice of Criterion this workspace's benches use:
//! `criterion_group!` / `criterion_main!`, `Criterion::{bench_function,
//! benchmark_group}`, `BenchmarkGroup::{sample_size, bench_function,
//! bench_with_input, finish}`, `BenchmarkId::from_parameter`, `Bencher::iter`
//! and `black_box`.
//!
//! The build environment cannot reach crates.io, so instead of Criterion's
//! statistical machinery this harness runs a short warm-up, then measures a
//! fixed wall-clock window per benchmark and reports mean/min iteration times.
//! That keeps `cargo bench` (and the CI smoke tier) fast while still printing
//! a usable per-benchmark number. Swapping in real Criterion only requires
//! editing `[workspace.dependencies]`.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterized benchmark, e.g. `BenchmarkId::from_parameter(500)`.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Builds an id whose display text is the parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }

    /// Builds an id from a function name plus a parameter value.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    /// Total time spent in the measured closure.
    elapsed: Duration,
    /// Number of measured iterations.
    iters: u64,
    /// Shortest single iteration.
    min: Duration,
    /// Wall-clock budget for the measurement loop.
    budget: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            min: Duration::MAX,
            budget,
        }
    }

    /// Runs `routine` repeatedly: a few warm-up calls, then measured calls
    /// until the time budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..3 {
            black_box(routine());
        }
        let loop_start = Instant::now();
        loop {
            let start = Instant::now();
            black_box(routine());
            let once = start.elapsed();
            self.elapsed += once;
            self.iters += 1;
            self.min = self.min.min(once);
            if loop_start.elapsed() >= self.budget {
                break;
            }
        }
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("bench {name:<55} (no iterations)");
            return;
        }
        let mean = self.elapsed / self.iters as u32;
        println!(
            "bench {name:<55} mean {mean:>12?}   min {:>12?}   iters {}",
            self.min, self.iters
        );
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // CRITERION_BUDGET_MS trims the per-benchmark window (the CI smoke
        // tier sets it low so `cargo bench` stays fast).
        let ms = std::env::var("CRITERION_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300);
        Criterion {
            budget: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.budget);
        f(&mut b);
        b.report(name);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
        }
    }
}

/// Group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the fixed time budget makes the
    /// requested sample count moot.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.parent.budget);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.parent.budget);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` forwards harness flags like `--bench`; they are
            // irrelevant to this fixed-budget harness.
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}
