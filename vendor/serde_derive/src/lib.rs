//! Working stand-ins for `serde_derive`'s `Serialize` / `Deserialize` derives.
//!
//! Earlier revisions expanded to nothing; the serving subsystem needs real
//! model persistence, so these derives now emit genuine implementations of
//! the vendored `serde`'s value-tree traits (`serde::Serialize::to_value` /
//! `serde::Deserialize::from_value`). The input item is parsed directly
//! from the token stream (no `syn`/`quote` in the offline environment) and
//! the generated impl is assembled as source text.
//!
//! Supported shapes (everything this workspace derives on):
//!
//! * structs with named fields → map keyed by field name;
//! * tuple structs — one field serializes as the inner value (newtype, like
//!   serde), several as a sequence;
//! * unit structs → null;
//! * enums with unit / tuple / struct variants → externally tagged, exactly
//!   like serde's default representation (`"Variant"` or
//!   `{"Variant": ...}`).
//!
//! Generic types are not supported and produce a compile error pointing
//! here. `#[serde(...)]` attributes are accepted but ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (value-tree flavor) for a struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, emit_serialize)
}

/// Derives `serde::Deserialize` (value-tree flavor) for a struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, emit_deserialize)
}

fn expand(input: TokenStream, emit: fn(&Item) -> String) -> TokenStream {
    let code = match parse_item(input) {
        Ok(item) => emit(&item),
        Err(message) => format!("::core::compile_error!({message:?});"),
    };
    code.parse().expect("derive emitted invalid Rust")
}

// ---------------------------------------------------------------------------
// Input model and parser
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    kind: Kind,
}

enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;

    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "the vendored serde derive does not support generic types (deriving on `{name}`)"
        ));
    }

    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item {
                name,
                kind: Kind::NamedStruct(parse_named_fields(g.stream())?),
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Ok(Item {
                name,
                kind: Kind::TupleStruct(count_tuple_fields(g.stream())),
            }),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item {
                name,
                kind: Kind::UnitStruct,
            }),
            other => Err(format!("unsupported struct body for `{name}`: {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let variants = parse_variants(g.stream())?;
                if variants.is_empty() {
                    return Err(format!("cannot derive serde traits for empty enum `{name}`"));
                }
                Ok(Item {
                    name,
                    kind: Kind::Enum(variants),
                })
            }
            other => Err(format!("unsupported enum body for `{name}`: {other:?}")),
        },
        other => Err(format!("expected `struct` or `enum`, found `{other}`")),
    }
}

fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1; // '#'
        if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
            *i += 1; // '[...]'
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis) {
            *i += 1; // '(crate)' etc.
        }
    }
}

/// Splits a token stream on commas that sit outside any `<...>` nesting
/// (delimited groups are single tokens, so only angle brackets need manual
/// depth tracking).
fn split_top_level_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    let mut angle_depth = 0usize;
    let mut prev_was_joint_minus = false;
    for tree in stream {
        if let TokenTree::Punct(p) = &tree {
            match p.as_char() {
                '<' => angle_depth += 1,
                // Ignore the '>' of a '->' so return types in fn-pointer
                // fields don't unbalance the depth counter.
                '>' if !prev_was_joint_minus => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    chunks.push(Vec::new());
                    prev_was_joint_minus = false;
                    continue;
                }
                _ => {}
            }
            prev_was_joint_minus = p.as_char() == '-' && p.spacing() == proc_macro::Spacing::Joint;
        } else {
            prev_was_joint_minus = false;
        }
        chunks.last_mut().expect("chunks is never empty").push(tree);
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    split_top_level_commas(stream)
        .into_iter()
        .map(|chunk| {
            let mut i = 0usize;
            skip_attributes(&chunk, &mut i);
            skip_visibility(&chunk, &mut i);
            match chunk.get(i) {
                Some(TokenTree::Ident(id)) => Ok(id.to_string()),
                other => Err(format!("expected field name, found {other:?}")),
            }
        })
        .collect()
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level_commas(stream).len()
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    split_top_level_commas(stream)
        .into_iter()
        .map(|chunk| {
            let mut i = 0usize;
            skip_attributes(&chunk, &mut i);
            let name = match chunk.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => return Err(format!("expected variant name, found {other:?}")),
            };
            i += 1;
            let fields = match chunk.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantFields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantFields::Named(parse_named_fields(g.stream())?)
                }
                // `None` or an explicit `= discriminant` are unit variants.
                _ => VariantFields::Unit,
            };
            Ok(Variant { name, fields })
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn emit_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let entries = fields
                .iter()
                .map(|f| format!("(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f}))"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Value::Map(::std::vec![{entries}])")
        }
        Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Value::Seq(::std::vec![{items}])")
        }
        Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let arms = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        VariantFields::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(::std::string::String::from({vn:?})),"
                        ),
                        VariantFields::Tuple(n) => {
                            let binders = (0..*n).map(|i| format!("f{i}")).collect::<Vec<_>>().join(", ");
                            let inner = if *n == 1 {
                                "::serde::Serialize::to_value(f0)".to_string()
                            } else {
                                let items = (0..*n)
                                    .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                                    .collect::<Vec<_>>()
                                    .join(", ");
                                format!("::serde::Value::Seq(::std::vec![{items}])")
                            };
                            format!(
                                "{name}::{vn}({binders}) => ::serde::Value::Map(::std::vec![(::std::string::String::from({vn:?}), {inner})]),"
                            )
                        }
                        VariantFields::Named(fields) => {
                            let binders = fields.join(", ");
                            let entries = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!(
                                "{name}::{vn} {{ {binders} }} => ::serde::Value::Map(::std::vec![(::std::string::String::from({vn:?}), ::serde::Value::Map(::std::vec![{entries}]))]),"
                            )
                        }
                    }
                })
                .collect::<Vec<_>>()
                .join("\n            ");
            format!("match self {{\n            {arms}\n        }}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn emit_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let inits = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(entries, {f:?}, {name:?})?,"))
                .collect::<Vec<_>>()
                .join("\n                ");
            format!(
                "let entries = value.as_map().ok_or_else(|| ::serde::Error::new(::std::format!(\
                 \"expected map for struct {name}, found {{}}\", value.kind())))?;\n\
                 ::std::result::Result::Ok({name} {{\n                {inits}\n            }})"
            )
        }
        Kind::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))")
        }
        Kind::TupleStruct(n) => {
            let items = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "let items = value.as_seq().ok_or_else(|| ::serde::Error::new(::std::format!(\
                 \"expected sequence for tuple struct {name}, found {{}}\", value.kind())))?;\n\
                 if items.len() != {n} {{\n\
                     return ::std::result::Result::Err(::serde::Error::new(::std::format!(\
                     \"expected {n} elements for {name}, found {{}}\", items.len())));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({items}))"
            )
        }
        Kind::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Kind::Enum(variants) => {
            let unit_arms = variants
                .iter()
                .filter(|v| matches!(v.fields, VariantFields::Unit))
                .map(|v| {
                    let vn = &v.name;
                    format!("{vn:?} => ::std::result::Result::Ok({name}::{vn}),")
                })
                .collect::<Vec<_>>()
                .join("\n                ");
            let tagged_arms = variants
                .iter()
                .filter(|v| !matches!(v.fields, VariantFields::Unit))
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        VariantFields::Unit => unreachable!("filtered above"),
                        VariantFields::Tuple(1) => format!(
                            "{vn:?} => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(inner)?)),"
                        ),
                        VariantFields::Tuple(n) => {
                            let items = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!(
                                "{vn:?} => {{\n\
                                     let items = inner.as_seq().ok_or_else(|| ::serde::Error::new(\
                                     ::std::format!(\"expected sequence for variant {name}::{vn}, found {{}}\", inner.kind())))?;\n\
                                     if items.len() != {n} {{\n\
                                         return ::std::result::Result::Err(::serde::Error::new(::std::format!(\
                                         \"expected {n} elements for {name}::{vn}, found {{}}\", items.len())));\n\
                                     }}\n\
                                     ::std::result::Result::Ok({name}::{vn}({items}))\n\
                                 }}"
                            )
                        }
                        VariantFields::Named(fields) => {
                            let inits = fields
                                .iter()
                                .map(|f| {
                                    format!("{f}: ::serde::field(entries, {f:?}, \"{name}::{vn}\")?,")
                                })
                                .collect::<Vec<_>>()
                                .join("\n                        ");
                            format!(
                                "{vn:?} => {{\n\
                                     let entries = inner.as_map().ok_or_else(|| ::serde::Error::new(\
                                     ::std::format!(\"expected map for variant {name}::{vn}, found {{}}\", inner.kind())))?;\n\
                                     ::std::result::Result::Ok({name}::{vn} {{\n                        {inits}\n                    }})\n\
                                 }}"
                            )
                        }
                    }
                })
                .collect::<Vec<_>>()
                .join("\n                ");
            format!(
                "match value {{\n\
                     ::serde::Value::Str(tag) => match tag.as_str() {{\n\
                         {unit_arms}\n\
                         other => ::std::result::Result::Err(::serde::Error::new(::std::format!(\
                         \"unknown unit variant `{{other}}` for enum {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Map(map_entries) if map_entries.len() == 1 => {{\n\
                         let (tag, inner) = &map_entries[0];\n\
                         let _ = inner;\n\
                         match tag.as_str() {{\n\
                             {tagged_arms}\n\
                             other => ::std::result::Result::Err(::serde::Error::new(::std::format!(\
                             \"unknown variant `{{other}}` for enum {name}\"))),\n\
                         }}\n\
                     }}\n\
                     other => ::std::result::Result::Err(::serde::Error::new(::std::format!(\
                     \"expected string or single-entry map for enum {name}, found {{}}\", other.kind()))),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
