//! Domain generators emulating the paper's benchmark datasets.
//!
//! * [`BibliographicDomain`] — DBLP-Scholar (DS) and DBLP-ACM style paper
//!   records: title, author list, venue, year.
//! * [`ProductDomain`] — Abt-Buy (AB, consumer electronics, 3 attributes) and
//!   Amazon-Google (AG, mainly software, 4 attributes) style product records.
//! * [`SongDomain`] — Songs (SG) style single-table deduplication with 7
//!   attributes.
//!
//! All generators synthesize data from scratch; they target the *shape* of the
//! original datasets (schema, dirtiness, imbalance), not their content.

use crate::generator::{CleanEntity, Domain};
use crate::perturb::{self, DirtinessProfile};
use crate::vocab;
use er_base::{AttrDef, AttrType, AttrValue, Schema};
use rand::Rng;

// ---------------------------------------------------------------------------
// Bibliographic domain (DS, DBLP-ACM)
// ---------------------------------------------------------------------------

/// Generator of bibliographic (paper) records.
#[derive(Debug, Clone)]
pub struct BibliographicDomain {
    /// Range of title lengths in tokens.
    pub title_len: (usize, usize),
    /// Range of author counts.
    pub author_count: (usize, usize),
    /// Range of publication years.
    pub year_range: (i64, i64),
}

impl BibliographicDomain {
    /// Configuration emulating DBLP–Google Scholar.
    pub fn dblp_scholar() -> Self {
        Self {
            title_len: (4, 9),
            author_count: (1, 5),
            year_range: (1985, 2010),
        }
    }

    /// Configuration emulating DBLP–ACM (slightly shorter titles, same schema).
    pub fn dblp_acm() -> Self {
        Self {
            title_len: (3, 8),
            author_count: (1, 4),
            year_range: (1994, 2003),
        }
    }
}

impl Domain for BibliographicDomain {
    fn schema(&self) -> Schema {
        Schema::new(vec![
            AttrDef::new("title", AttrType::Text),
            AttrDef::new("authors", AttrType::EntitySet),
            AttrDef::new("venue", AttrType::EntityName),
            AttrDef::new("year", AttrType::Numeric),
        ])
    }

    fn generate_entity<R: Rng + ?Sized>(&self, rng: &mut R, entity_id: u64) -> CleanEntity {
        let title_len = rng.gen_range(self.title_len.0..=self.title_len.1);
        let title = vocab::phrase(rng, vocab::TITLE_WORDS, title_len);
        let n_authors = rng.gen_range(self.author_count.0..=self.author_count.1);
        let authors: Vec<String> = (0..n_authors).map(|_| vocab::person_name(rng)).collect();
        let venue = vocab::VENUES[rng.gen_range(0..vocab::VENUES.len())];
        let year = rng.gen_range(self.year_range.0..=self.year_range.1);
        CleanEntity {
            entity_id,
            values: vec![
                AttrValue::Str(title),
                AttrValue::Str(authors.join(", ")),
                // Canonical form stores "short|long" so derive_record can pick.
                AttrValue::Str(format!("{}|{}", venue.0, venue.1)),
                AttrValue::Num(year as f64),
            ],
        }
    }

    fn generate_sibling<R: Rng + ?Sized>(&self, rng: &mut R, base: &CleanEntity, entity_id: u64) -> CleanEntity {
        // A different paper by (mostly) the same authors: extended/follow-up
        // version with an overlapping title, a different year and possibly a
        // different venue. These become hard negative pairs.
        let mut values = base.values.clone();
        let title = values[0].str_or_empty().to_owned();
        let extra = vocab::phrase(rng, vocab::TITLE_WORDS, 2);
        values[0] = AttrValue::Str(format!("{title} {extra}"));
        if rng.gen_bool(0.5) {
            let venue = vocab::VENUES[rng.gen_range(0..vocab::VENUES.len())];
            values[2] = AttrValue::Str(format!("{}|{}", venue.0, venue.1));
        }
        let year = values[3].as_num().unwrap_or(2000.0) + rng.gen_range(1..=3) as f64;
        values[3] = AttrValue::Num(year);
        CleanEntity { entity_id, values }
    }

    fn derive_record<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        entity: &CleanEntity,
        profile: &DirtinessProfile,
    ) -> Vec<AttrValue> {
        let title = entity.values[0].str_or_empty();
        let authors = entity.values[1].str_or_empty();
        let venue_raw = entity.values[2].str_or_empty();
        let (venue_short, venue_long) = venue_raw.split_once('|').unwrap_or((venue_raw, venue_raw));
        let year = entity.values[3].as_num().unwrap_or(2000.0);
        vec![
            perturb::perturb_text(rng, title, profile, vocab::TITLE_WORDS),
            perturb::perturb_entity_set(rng, authors, profile),
            perturb::perturb_entity_name(rng, venue_short, venue_long, profile),
            perturb::perturb_numeric(rng, year, profile, 2.0),
        ]
    }

    fn blocking_attrs(&self) -> Vec<usize> {
        vec![0, 1]
    }
}

// ---------------------------------------------------------------------------
// Product domain (AB, AG)
// ---------------------------------------------------------------------------

/// Whether the product generator emulates consumer electronics (Abt-Buy) or
/// software (Amazon-Google).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProductStyle {
    /// Consumer electronics, 3 attributes: name, description, price.
    Electronics,
    /// Software products, 4 attributes: name, manufacturer, description, price.
    Software,
}

/// Generator of product records.
#[derive(Debug, Clone)]
pub struct ProductDomain {
    /// Which benchmark the generator emulates.
    pub style: ProductStyle,
    /// Range of description lengths in tokens.
    pub description_len: (usize, usize),
    /// Price range.
    pub price_range: (f64, f64),
}

impl ProductDomain {
    /// Configuration emulating Abt-Buy (electronics, 3 attributes).
    pub fn abt_buy() -> Self {
        Self {
            style: ProductStyle::Electronics,
            description_len: (5, 14),
            price_range: (15.0, 1200.0),
        }
    }

    /// Configuration emulating Amazon-Google (software, 4 attributes).
    pub fn amazon_google() -> Self {
        Self {
            style: ProductStyle::Software,
            description_len: (4, 12),
            price_range: (20.0, 600.0),
        }
    }

    fn noun_pool(&self) -> &'static [&'static str] {
        match self.style {
            ProductStyle::Electronics => vocab::PRODUCT_NOUNS,
            ProductStyle::Software => vocab::SOFTWARE_NOUNS,
        }
    }
}

impl Domain for ProductDomain {
    fn schema(&self) -> Schema {
        match self.style {
            ProductStyle::Electronics => Schema::new(vec![
                AttrDef::new("name", AttrType::Text),
                AttrDef::new("description", AttrType::Text),
                AttrDef::new("price", AttrType::Numeric),
            ]),
            ProductStyle::Software => Schema::new(vec![
                AttrDef::new("name", AttrType::Text),
                AttrDef::new("manufacturer", AttrType::EntityName),
                AttrDef::new("description", AttrType::Text),
                AttrDef::new("price", AttrType::Numeric),
            ]),
        }
    }

    fn generate_entity<R: Rng + ?Sized>(&self, rng: &mut R, entity_id: u64) -> CleanEntity {
        let brand = vocab::pick(rng, vocab::BRANDS).to_owned();
        let noun = vocab::pick(rng, self.noun_pool()).to_owned();
        let qualifier = vocab::pick(rng, vocab::PRODUCT_QUALIFIERS).to_owned();
        let model = vocab::model_code(rng);
        let name = format!("{brand} {noun} {model} {qualifier}");
        let desc_len = rng.gen_range(self.description_len.0..=self.description_len.1);
        let description = format!(
            "{} {} {}",
            brand,
            vocab::phrase(
                rng,
                vocab::PRODUCT_QUALIFIERS,
                desc_len.min(vocab::PRODUCT_QUALIFIERS.len() - 1)
            ),
            noun
        );
        let price = rng.gen_range(self.price_range.0..self.price_range.1);
        let price = (price * 100.0).round() / 100.0;
        let values = match self.style {
            ProductStyle::Electronics => vec![AttrValue::Str(name), AttrValue::Str(description), AttrValue::Num(price)],
            ProductStyle::Software => vec![
                AttrValue::Str(name),
                AttrValue::Str(brand.to_owned()),
                AttrValue::Str(description),
                AttrValue::Num(price),
            ],
        };
        CleanEntity { entity_id, values }
    }

    fn generate_sibling<R: Rng + ?Sized>(&self, rng: &mut R, base: &CleanEntity, entity_id: u64) -> CleanEntity {
        // Same brand and category, different model number (hard negatives like
        // "canon eos 450d" vs "canon eos 500d").
        let mut values = base.values.clone();
        let name = values[0].str_or_empty().to_owned();
        let mut toks: Vec<&str> = name.split(' ').collect();
        let new_model = vocab::model_code(rng);
        if toks.len() >= 3 {
            toks[2] = &new_model;
            values[0] = AttrValue::Str(toks.join(" "));
        } else {
            values[0] = AttrValue::Str(format!("{name} {new_model}"));
        }
        let price_idx = values.len() - 1;
        let price = values[price_idx].as_num().unwrap_or(100.0);
        values[price_idx] = AttrValue::Num((price * rng.gen_range(0.8..1.2) * 100.0).round() / 100.0);
        CleanEntity { entity_id, values }
    }

    fn derive_record<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        entity: &CleanEntity,
        profile: &DirtinessProfile,
    ) -> Vec<AttrValue> {
        match self.style {
            ProductStyle::Electronics => {
                let name = entity.values[0].str_or_empty();
                let description = entity.values[1].str_or_empty();
                let price = entity.values[2].as_num().unwrap_or(0.0);
                vec![
                    perturb::perturb_text(rng, name, profile, vocab::PRODUCT_QUALIFIERS),
                    perturb::perturb_text(rng, description, profile, vocab::PRODUCT_QUALIFIERS),
                    perturb::perturb_numeric(rng, price, profile, (price * 0.15).max(1.0)),
                ]
            }
            ProductStyle::Software => {
                let name = entity.values[0].str_or_empty();
                let manufacturer = entity.values[1].str_or_empty();
                let description = entity.values[2].str_or_empty();
                let price = entity.values[3].as_num().unwrap_or(0.0);
                vec![
                    perturb::perturb_text(rng, name, profile, vocab::PRODUCT_QUALIFIERS),
                    perturb::perturb_entity_name(rng, manufacturer, manufacturer, profile),
                    perturb::perturb_text(rng, description, profile, vocab::PRODUCT_QUALIFIERS),
                    perturb::perturb_numeric(rng, price, profile, (price * 0.15).max(1.0)),
                ]
            }
        }
    }

    fn blocking_attrs(&self) -> Vec<usize> {
        vec![0]
    }
}

// ---------------------------------------------------------------------------
// Song domain (SG)
// ---------------------------------------------------------------------------

/// Generator of song records (single-table deduplication, 7 attributes).
#[derive(Debug, Clone, Default)]
pub struct SongDomain;

impl SongDomain {
    /// Configuration emulating the Songs benchmark.
    pub fn songs() -> Self {
        SongDomain
    }
}

impl Domain for SongDomain {
    fn schema(&self) -> Schema {
        Schema::new(vec![
            AttrDef::new("title", AttrType::Text),
            AttrDef::new("artist", AttrType::EntitySet),
            AttrDef::new("album", AttrType::Text),
            AttrDef::new("year", AttrType::Numeric),
            AttrDef::new("duration", AttrType::Numeric),
            AttrDef::new("genre", AttrType::Categorical),
            AttrDef::new("track", AttrType::Numeric),
        ])
    }

    fn generate_entity<R: Rng + ?Sized>(&self, rng: &mut R, entity_id: u64) -> CleanEntity {
        let title_len = rng.gen_range(1..=4);
        let title = vocab::phrase(rng, vocab::SONG_WORDS, title_len);
        let n_artists = if rng.gen_bool(0.15) { 2 } else { 1 };
        let artists: Vec<String> = (0..n_artists).map(|_| vocab::person_name(rng)).collect();
        let album_len = rng.gen_range(1..=3);
        let album = vocab::phrase(rng, vocab::ALBUM_WORDS, album_len);
        let year = rng.gen_range(1960..=2015);
        let duration = rng.gen_range(120..=420);
        let genre = vocab::pick(rng, vocab::GENRES).to_owned();
        let track = rng.gen_range(1..=18);
        CleanEntity {
            entity_id,
            values: vec![
                AttrValue::Str(title),
                AttrValue::Str(artists.join(", ")),
                AttrValue::Str(album),
                AttrValue::Num(year as f64),
                AttrValue::Num(duration as f64),
                AttrValue::Str(genre.to_owned()),
                AttrValue::Num(track as f64),
            ],
        }
    }

    fn generate_sibling<R: Rng + ?Sized>(&self, rng: &mut R, base: &CleanEntity, entity_id: u64) -> CleanEntity {
        // A different recording of a song with the same title: live / cover
        // version on another album with a different duration.
        let mut values = base.values.clone();
        let album_len = rng.gen_range(1..=3);
        let album = vocab::phrase(rng, vocab::ALBUM_WORDS, album_len);
        values[2] = AttrValue::Str(format!("{album} live"));
        if rng.gen_bool(0.5) {
            values[1] = AttrValue::Str(vocab::person_name(rng));
        }
        let year = values[3].as_num().unwrap_or(2000.0) + rng.gen_range(1..=10) as f64;
        values[3] = AttrValue::Num(year);
        let duration = values[4].as_num().unwrap_or(200.0) + rng.gen_range(10..=60) as f64;
        values[4] = AttrValue::Num(duration);
        CleanEntity { entity_id, values }
    }

    fn derive_record<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        entity: &CleanEntity,
        profile: &DirtinessProfile,
    ) -> Vec<AttrValue> {
        let title = entity.values[0].str_or_empty();
        let artist = entity.values[1].str_or_empty();
        let album = entity.values[2].str_or_empty();
        let year = entity.values[3].as_num().unwrap_or(2000.0);
        let duration = entity.values[4].as_num().unwrap_or(200.0);
        let genre = entity.values[5].str_or_empty();
        let track = entity.values[6].as_num().unwrap_or(1.0);
        vec![
            perturb::perturb_text(rng, title, profile, vocab::SONG_WORDS),
            perturb::perturb_entity_set(rng, artist, profile),
            perturb::perturb_text(rng, album, profile, vocab::ALBUM_WORDS),
            perturb::perturb_numeric(rng, year, profile, 1.0),
            perturb::perturb_numeric(rng, duration, profile, 10.0),
            perturb::perturb_text(rng, genre, profile, vocab::GENRES),
            perturb::perturb_numeric(rng, track, profile, 2.0),
        ]
    }

    fn blocking_attrs(&self) -> Vec<usize> {
        vec![0, 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_base::rng::seeded;

    #[test]
    fn bibliographic_schema_matches_table2() {
        let d = BibliographicDomain::dblp_scholar();
        assert_eq!(d.schema().len(), 4);
        assert_eq!(d.schema().attr(1).ty, AttrType::EntitySet);
        assert_eq!(BibliographicDomain::dblp_acm().schema().len(), 4);
    }

    #[test]
    fn product_schemas_match_table2() {
        assert_eq!(ProductDomain::abt_buy().schema().len(), 3);
        assert_eq!(ProductDomain::amazon_google().schema().len(), 4);
    }

    #[test]
    fn song_schema_has_seven_attributes() {
        assert_eq!(SongDomain::songs().schema().len(), 7);
    }

    #[test]
    fn bibliographic_entity_is_well_formed() {
        let d = BibliographicDomain::dblp_scholar();
        let mut rng = seeded(1);
        let e = d.generate_entity(&mut rng, 0);
        assert_eq!(e.values.len(), 4);
        let year = e.values[3].as_num().unwrap();
        assert!((1985.0..=2010.0).contains(&year));
        assert!(e.values[2].str_or_empty().contains('|'));
        let record = d.derive_record(&mut rng, &e, &DirtinessProfile::CLEAN);
        // Clean derivation keeps the long venue form, no pipe separator.
        assert!(!record[2].str_or_empty().contains('|'));
    }

    #[test]
    fn sibling_is_similar_but_distinct() {
        let d = BibliographicDomain::dblp_scholar();
        let mut rng = seeded(2);
        let e = d.generate_entity(&mut rng, 0);
        let s = d.generate_sibling(&mut rng, &e, 1);
        assert_ne!(s.entity_id, e.entity_id);
        // Sibling title extends the base title.
        assert!(s.values[0].str_or_empty().starts_with(e.values[0].str_or_empty()));
        // Year differs.
        assert_ne!(s.values[3].as_num(), e.values[3].as_num());
    }

    #[test]
    fn product_sibling_changes_model_code() {
        let d = ProductDomain::abt_buy();
        let mut rng = seeded(3);
        let e = d.generate_entity(&mut rng, 0);
        let s = d.generate_sibling(&mut rng, &e, 1);
        let base_name = e.values[0].str_or_empty();
        let sib_name = s.values[0].str_or_empty();
        assert_ne!(base_name, sib_name);
        // Brand (first token) stays the same.
        assert_eq!(base_name.split(' ').next(), sib_name.split(' ').next());
    }

    #[test]
    fn software_products_have_manufacturer() {
        let d = ProductDomain::amazon_google();
        let mut rng = seeded(4);
        let e = d.generate_entity(&mut rng, 0);
        assert_eq!(e.values.len(), 4);
        let brand = e.values[1].str_or_empty();
        assert!(e.values[0].str_or_empty().starts_with(brand));
    }

    #[test]
    fn song_entities_have_valid_ranges() {
        let d = SongDomain::songs();
        let mut rng = seeded(5);
        for i in 0..50 {
            let e = d.generate_entity(&mut rng, i);
            let year = e.values[3].as_num().unwrap();
            let duration = e.values[4].as_num().unwrap();
            assert!((1960.0..=2015.0).contains(&year));
            assert!((120.0..=420.0).contains(&duration));
            assert!(vocab::GENRES.contains(&e.values[5].str_or_empty()));
        }
    }

    #[test]
    fn song_sibling_is_distinct_recording() {
        let d = SongDomain::songs();
        let mut rng = seeded(6);
        let e = d.generate_entity(&mut rng, 0);
        let s = d.generate_sibling(&mut rng, &e, 1);
        assert_eq!(s.values[0], e.values[0], "sibling keeps the title");
        assert_ne!(s.values[2], e.values[2], "sibling changes the album");
        assert!(s.values[4].as_num().unwrap() > e.values[4].as_num().unwrap());
    }
}
