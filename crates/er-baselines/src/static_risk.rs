//! The `StaticRisk` baseline [Chen et al., 2018].
//!
//! StaticRisk estimates a pair's equivalence-probability distribution by
//! Bayesian inference: the classifier output provides the prior expectation,
//! and human-labeled pairs (the validation data) act as observed samples that
//! update it to a Beta posterior.  The risk is then measured by Conditional
//! Value-at-Risk on the (normal-approximated) posterior.  The model has no
//! learnable parameters — it is the non-learnable distributional counterpart
//! of LearnRisk.

use learnrisk_core::{pair_risk, RiskMetric};
use serde::{Deserialize, Serialize};

/// Configuration of StaticRisk.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StaticRiskConfig {
    /// Pseudo-count of the prior derived from the classifier output.
    pub prior_strength: f64,
    /// Number of classifier-output bins used to group the labeled samples.
    pub bins: usize,
    /// CVaR confidence level.
    pub theta: f64,
}

impl Default for StaticRiskConfig {
    fn default() -> Self {
        Self {
            prior_strength: 10.0,
            bins: 10,
            theta: 0.9,
        }
    }
}

/// Fitted StaticRisk model: per-bin Beta posterior statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StaticRisk {
    /// Per-bin (matches, total) counts from the labeled validation data.
    bin_counts: Vec<(f64, f64)>,
    config: StaticRiskConfig,
}

impl StaticRisk {
    /// Fits the model from validation data: classifier outputs and ground
    /// truth labels of the human-labeled pairs.
    pub fn fit(valid_outputs: &[f64], valid_is_match: &[bool], config: StaticRiskConfig) -> Self {
        assert_eq!(valid_outputs.len(), valid_is_match.len());
        let bins = config.bins.max(1);
        let mut bin_counts = vec![(0.0, 0.0); bins];
        for (&p, &m) in valid_outputs.iter().zip(valid_is_match) {
            let b = ((p.clamp(0.0, 1.0) * bins as f64) as usize).min(bins - 1);
            bin_counts[b].1 += 1.0;
            if m {
                bin_counts[b].0 += 1.0;
            }
        }
        Self { bin_counts, config }
    }

    /// Posterior Beta parameters `(α, β)` for a test pair with classifier
    /// output `p`: prior `Beta(c·p, c·(1−p))` updated with the validation
    /// samples falling in the same output bin.
    pub fn posterior(&self, p: f64) -> (f64, f64) {
        let p = p.clamp(1e-3, 1.0 - 1e-3);
        let c = self.config.prior_strength;
        let bins = self.bin_counts.len();
        let b = ((p * bins as f64) as usize).min(bins - 1);
        let (matches, total) = self.bin_counts[b];
        (c * p + matches, c * (1.0 - p) + (total - matches))
    }

    /// Risk of one pair given its classifier output and the machine label.
    pub fn risk(&self, output: f64, machine_says_match: bool) -> f64 {
        let (alpha, beta) = self.posterior(output);
        let n = alpha + beta;
        let mean = alpha / n;
        let var = alpha * beta / (n * n * (n + 1.0));
        pair_risk(
            RiskMetric::ConditionalValueAtRisk,
            mean,
            var.sqrt(),
            machine_says_match,
            self.config.theta,
        )
    }

    /// Risk scores for a batch of pairs.
    pub fn scores(&self, outputs: &[f64], machine_says_match: &[bool]) -> Vec<f64> {
        assert_eq!(outputs.len(), machine_says_match.len());
        outputs
            .iter()
            .zip(machine_says_match)
            .map(|(&p, &m)| self.risk(p, m))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Validation data where the classifier is well calibrated except in the
    /// 0.6–0.7 bin, where it systematically overestimates equivalence.
    fn validation() -> (Vec<f64>, Vec<bool>) {
        let mut outputs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..200 {
            let p = (i % 10) as f64 / 10.0 + 0.05;
            let is_match = if (0.6..0.7).contains(&p) {
                i % 10 == 9
            } else {
                (i % 100) as f64 / 100.0 < p
            };
            outputs.push(p);
            labels.push(is_match);
        }
        (outputs, labels)
    }

    #[test]
    fn posterior_counts_follow_bins() {
        let (o, l) = validation();
        let sr = StaticRisk::fit(&o, &l, StaticRiskConfig::default());
        let (a, b) = sr.posterior(0.95);
        assert!(a > b, "high-output bin should be match-heavy");
        let (a, b) = sr.posterior(0.05);
        assert!(b > a, "low-output bin should be unmatch-heavy");
    }

    #[test]
    fn validation_evidence_overrides_misleading_output() {
        let (o, l) = validation();
        let sr = StaticRisk::fit(&o, &l, StaticRiskConfig::default());
        // In the 0.65 bin the validation data says most pairs are NOT matches,
        // so a match-labeled pair there is riskier than one at 0.95.
        let misleading = sr.risk(0.65, true);
        let calibrated = sr.risk(0.95, true);
        assert!(misleading > calibrated, "{misleading} vs {calibrated}");
    }

    #[test]
    fn risk_direction_follows_machine_label() {
        let (o, l) = validation();
        let sr = StaticRisk::fit(&o, &l, StaticRiskConfig::default());
        assert!(sr.risk(0.9, false) > sr.risk(0.9, true));
        assert!(sr.risk(0.1, true) > sr.risk(0.1, false));
    }

    #[test]
    fn works_without_validation_data() {
        let sr = StaticRisk::fit(&[], &[], StaticRiskConfig::default());
        // Falls back to the prior: ambiguous outputs are riskier than extremes.
        assert!(sr.risk(0.5, true) > sr.risk(0.97, true));
        let scores = sr.scores(&[0.2, 0.8], &[false, true]);
        assert_eq!(scores.len(), 2);
        assert!(scores.iter().all(|s| (0.0..=1.0).contains(s)));
    }

    #[test]
    fn prior_strength_controls_adaptivity() {
        let (o, l) = validation();
        let weak = StaticRisk::fit(
            &o,
            &l,
            StaticRiskConfig {
                prior_strength: 1.0,
                ..Default::default()
            },
        );
        let strong = StaticRisk::fit(
            &o,
            &l,
            StaticRiskConfig {
                prior_strength: 1000.0,
                ..Default::default()
            },
        );
        // With an overwhelming prior, the misleading bin is no longer special.
        let weak_gap = weak.risk(0.65, true) - weak.risk(0.95, true);
        let strong_gap = strong.risk(0.65, true) - strong.risk(0.95, true);
        assert!(weak_gap > strong_gap);
    }
}
