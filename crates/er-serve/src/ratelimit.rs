//! Per-client token-bucket rate limiting in front of the admission queue.
//!
//! Each client (keyed by `X-Client-Id` header, falling back to the peer IP)
//! gets an independent bucket of [`RateLimitConfig::burst`] tokens refilled
//! continuously at [`RateLimitConfig::rate_per_sec`]. A request costs one
//! token; an empty bucket yields a 429 carrying `X-RateLimit-*` headers —
//! deliberately distinct from the queue-full 429, which carries
//! `Retry-After: 0` and **no** `X-RateLimit-*` headers, so clients can tell
//! "you personally are over budget, back off for `Retry-After` seconds"
//! from "the server is momentarily saturated, retry immediately".
//!
//! [`RateLimiter::check`] takes the clock as an argument so tests can drive
//! refill deterministically without sleeping.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

/// Token-bucket parameters. `burst` is the bucket capacity (how many
/// requests a client may send back-to-back from a full bucket);
/// `rate_per_sec` is the sustained refill rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimitConfig {
    /// Tokens added per second.
    pub rate_per_sec: f64,
    /// Bucket capacity in tokens.
    pub burst: f64,
}

impl RateLimitConfig {
    /// A config sustaining `rate_per_sec` with bursts up to `burst`.
    pub fn new(rate_per_sec: f64, burst: f64) -> Self {
        assert!(
            rate_per_sec > 0.0 && burst >= 1.0,
            "rate limit needs a positive rate and a burst of at least one token"
        );
        Self { rate_per_sec, burst }
    }
}

/// Outcome of a rate-limit check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RateLimitDecision {
    /// The request is admitted; `remaining` whole tokens are left.
    Allowed {
        /// Whole tokens remaining after this request.
        remaining: u64,
    },
    /// The bucket is empty; retry no sooner than `retry_after` seconds.
    Limited {
        /// Seconds until one full token will have refilled.
        retry_after: f64,
        /// The bucket capacity (for the `X-RateLimit-Limit` header).
        limit: f64,
    },
}

struct TokenBucket {
    tokens: f64,
    last: Instant,
}

/// Per-client token buckets behind one mutex. The critical section is a
/// handful of float operations per request, which is noise next to the
/// socket round trip it guards.
pub struct RateLimiter {
    config: RateLimitConfig,
    buckets: Mutex<HashMap<String, TokenBucket>>,
}

impl RateLimiter {
    /// A limiter where every client starts with a full bucket.
    pub fn new(config: RateLimitConfig) -> Self {
        Self {
            config,
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// The configured parameters.
    pub fn config(&self) -> RateLimitConfig {
        self.config
    }

    /// Spends one token from `client`'s bucket if available. `now` is
    /// injected so tests can step time deterministically; production callers
    /// pass [`Instant::now`].
    pub fn check(&self, client: &str, now: Instant) -> RateLimitDecision {
        let mut buckets = self.buckets.lock().unwrap_or_else(|e| e.into_inner());
        let bucket = buckets.entry(client.to_string()).or_insert(TokenBucket {
            tokens: self.config.burst,
            last: now,
        });
        // `saturating_duration_since` tolerates the lock being acquired out
        // of `now`-order by two racing requests.
        let elapsed = now.saturating_duration_since(bucket.last).as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * self.config.rate_per_sec).min(self.config.burst);
        bucket.last = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            RateLimitDecision::Allowed {
                remaining: bucket.tokens.floor() as u64,
            }
        } else {
            RateLimitDecision::Limited {
                retry_after: (1.0 - bucket.tokens) / self.config.rate_per_sec,
                limit: self.config.burst,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn secs(t0: Instant, s: f64) -> Instant {
        t0 + Duration::from_secs_f64(s)
    }

    #[test]
    fn burst_exhaustion_then_429() {
        let limiter = RateLimiter::new(RateLimitConfig::new(1.0, 3.0));
        let t0 = Instant::now();
        for expected_remaining in [2, 1, 0] {
            assert_eq!(
                limiter.check("a", t0),
                RateLimitDecision::Allowed {
                    remaining: expected_remaining
                }
            );
        }
        match limiter.check("a", t0) {
            RateLimitDecision::Limited { retry_after, limit } => {
                assert_eq!(limit, 3.0);
                assert!(
                    (retry_after - 1.0).abs() < 1e-9,
                    "empty bucket at 1 token/s refills in 1s"
                );
            }
            other => panic!("expected Limited, got {other:?}"),
        }
    }

    #[test]
    fn refill_boundary_is_exact() {
        let limiter = RateLimiter::new(RateLimitConfig::new(2.0, 1.0));
        let t0 = Instant::now();
        assert!(matches!(limiter.check("a", t0), RateLimitDecision::Allowed { .. }));
        // Just below one token refilled (0.5s at 2 tokens/s): still limited.
        assert!(matches!(
            limiter.check("a", secs(t0, 0.4999)),
            RateLimitDecision::Limited { .. }
        ));
        // That limited probe did not consume anything; at exactly the refill
        // boundary the token is back.
        assert_eq!(
            limiter.check("a", secs(t0, 0.5)),
            RateLimitDecision::Allowed { remaining: 0 }
        );
    }

    #[test]
    fn refill_caps_at_burst() {
        let limiter = RateLimiter::new(RateLimitConfig::new(100.0, 2.0));
        let t0 = Instant::now();
        limiter.check("a", t0);
        // An hour idle refills to the 2-token cap, not 360k tokens.
        assert_eq!(
            limiter.check("a", secs(t0, 3600.0)),
            RateLimitDecision::Allowed { remaining: 1 }
        );
        assert_eq!(
            limiter.check("a", secs(t0, 3600.0)),
            RateLimitDecision::Allowed { remaining: 0 }
        );
        assert!(matches!(
            limiter.check("a", secs(t0, 3600.0)),
            RateLimitDecision::Limited { .. }
        ));
    }

    #[test]
    fn clients_are_isolated() {
        let limiter = RateLimiter::new(RateLimitConfig::new(0.1, 1.0));
        let t0 = Instant::now();
        assert!(matches!(limiter.check("a", t0), RateLimitDecision::Allowed { .. }));
        assert!(matches!(limiter.check("a", t0), RateLimitDecision::Limited { .. }));
        // Client B's bucket is untouched by A's exhaustion.
        assert!(matches!(limiter.check("b", t0), RateLimitDecision::Allowed { .. }));
    }

    #[test]
    fn time_running_backwards_is_tolerated() {
        let limiter = RateLimiter::new(RateLimitConfig::new(1.0, 2.0));
        let t0 = Instant::now();
        limiter.check("a", secs(t0, 10.0));
        // A check with an earlier `now` (lock-order race) must not panic or
        // mint tokens.
        assert_eq!(limiter.check("a", t0), RateLimitDecision::Allowed { remaining: 0 });
        assert!(matches!(limiter.check("a", t0), RateLimitDecision::Limited { .. }));
    }

    #[test]
    #[should_panic(expected = "positive rate")]
    fn zero_rate_is_rejected() {
        RateLimitConfig::new(0.0, 1.0);
    }
}
