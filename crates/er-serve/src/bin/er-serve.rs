//! Standalone scoring backend: one `er-serve` process serving one model
//! artifact over HTTP/1.1.
//!
//! This is the process `er-gateway` fans traffic out to. It boots from an
//! artifact file, binds (port `0` picks an ephemeral port), prints a single
//! machine-readable `LISTENING <addr>` line on stdout so a parent process
//! can scrape the bound address, and serves until killed.
//!
//! ```text
//! er-serve --artifact out/model.json --listen 127.0.0.1:0 [--threads N]
//!          [--queue-capacity N] [--max-connections N]
//! ```
//!
//! Fault injection is inherited from the `ER_FAULT_PLAN` environment
//! variable exactly as library-embedded servers do (see `er_serve::fault`).

use er_serve::{ModelArtifact, ReloadableExecutor, ScoreServer, ServeConfig, ServerConfig};
use std::io::Write;
use std::sync::Arc;

struct Options {
    artifact: String,
    listen: String,
    threads: Option<usize>,
    queue_capacity: Option<usize>,
    max_connections: Option<usize>,
}

fn usage() -> ! {
    eprintln!(
        "usage: er-serve --artifact <model.json> [--listen <addr:port>] [--threads <n>] \
         [--queue-capacity <n>] [--max-connections <n>]"
    );
    std::process::exit(2);
}

fn parse_options() -> Options {
    let mut options = Options {
        artifact: String::new(),
        listen: "127.0.0.1:0".to_string(),
        threads: None,
        queue_capacity: None,
        max_connections: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| args.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match flag.as_str() {
            "--artifact" => options.artifact = value("--artifact"),
            "--listen" => options.listen = value("--listen"),
            "--threads" => options.threads = value("--threads").parse().ok(),
            "--queue-capacity" => options.queue_capacity = value("--queue-capacity").parse().ok(),
            "--max-connections" => options.max_connections = value("--max-connections").parse().ok(),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage();
            }
        }
    }
    if options.artifact.is_empty() {
        eprintln!("--artifact is required");
        usage();
    }
    options
}

fn main() {
    let options = parse_options();
    let artifact = match ModelArtifact::load(&options.artifact) {
        Ok(artifact) => artifact,
        Err(e) => {
            eprintln!("er-serve: cannot load artifact {:?}: {e}", options.artifact);
            std::process::exit(1);
        }
    };
    let digest = artifact.digest();
    let mut serve_config = ServeConfig::default();
    if let Some(threads) = options.threads {
        serve_config = serve_config.with_threads(threads.max(1));
    }
    let executor = match ReloadableExecutor::from_artifact(artifact, serve_config) {
        Ok(executor) => Arc::new(executor),
        Err(e) => {
            eprintln!("er-serve: artifact refused: {e}");
            std::process::exit(1);
        }
    };
    let mut config = ServerConfig {
        addr: options.listen.clone(),
        ..ServerConfig::default()
    };
    if let Some(capacity) = options.queue_capacity {
        config.queue_capacity = capacity;
    }
    if let Some(max) = options.max_connections {
        config.max_connections = max;
    }
    let server = match ScoreServer::start(executor, config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("er-serve: cannot bind {:?}: {e}", options.listen);
            std::process::exit(1);
        }
    };
    // The one line a supervising parent (gateway launcher, serve_bench)
    // scrapes to learn the ephemeral port. Flushed explicitly: the parent
    // blocks on it before sending traffic.
    println!(
        "LISTENING {} version={} digest={digest}",
        server.local_addr(),
        server.executor().version()
    );
    let _ = std::io::stdout().flush();
    loop {
        std::thread::park();
    }
}
