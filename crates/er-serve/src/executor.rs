//! The sharded multi-threaded executor.
//!
//! [`ShardedExecutor::score_batch`] splits a batch into contiguous chunks
//! and scores them on `threads` scoped worker threads
//! (`std::thread::scope`), each with its own [`EngineScratch`]. A bounded
//! LRU result cache, sharded across mutexes and keyed on pair id, serves
//! repeated-pair traffic without re-scoring. Scoring is a pure function of
//! the request, so results are deterministic: the same batch produces the
//! same scores for every thread count and cache state (the concurrency test
//! suite asserts this bit-exactly).

use crate::cache::LruCache;
use crate::engine::{EngineScratch, ScoreRequest, ScoringEngine};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Configuration of a [`ShardedExecutor`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Worker threads used by [`ShardedExecutor::score_batch`].
    pub threads: usize,
    /// Total cached scores across all shards; 0 disables caching.
    pub cache_capacity: usize,
    /// Number of independently locked cache shards.
    pub cache_shards: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            threads: std::thread::available_parallelism().map_or(2, |n| n.get()),
            cache_capacity: 16_384,
            cache_shards: 16,
        }
    }
}

impl ServeConfig {
    /// This configuration with a different thread count.
    pub fn with_threads(self, threads: usize) -> Self {
        Self { threads, ..self }
    }
}

/// Cache hit/miss counters of an executor.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Requests answered from the cache.
    pub hits: u64,
    /// Requests that had to be scored.
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of requests answered from the cache (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A [`ScoringEngine`] behind worker threads and a sharded score cache.
pub struct ShardedExecutor {
    engine: ScoringEngine,
    config: ServeConfig,
    shards: Vec<Mutex<LruCache<u64, f64>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ShardedExecutor {
    /// Wraps an engine. `config.threads` and `config.cache_shards` are
    /// floored at 1; `cache_capacity` splits across the shards rounding *up*,
    /// so a non-zero requested capacity always caches at least one entry per
    /// shard (the total may exceed the request by up to `cache_shards - 1`).
    pub fn new(engine: ScoringEngine, config: ServeConfig) -> Self {
        let shard_count = config.cache_shards.max(1);
        let per_shard = config.cache_capacity.div_ceil(shard_count);
        let shards = (0..shard_count).map(|_| Mutex::new(LruCache::new(per_shard))).collect();
        Self {
            engine,
            config,
            shards,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &ScoringEngine {
        &self.engine
    }

    /// The executor configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Cache hit/miss counters since construction (or the last reset).
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Resets the hit/miss counters (the cache contents stay warm).
    pub fn reset_cache_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }

    #[inline]
    fn shard_of(&self, pair_id: u64) -> usize {
        // SplitMix64 finalizer: pair ids are often sequential, so spread them
        // before taking the shard residue.
        let mut z = pair_id.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) as usize % self.shards.len()
    }

    /// Scores one request through the cache.
    ///
    /// The shard lock is released while computing a miss, so two threads may
    /// race to score the same cold pair; both compute the identical value, so
    /// the cache stays consistent.
    pub fn score_one(&self, request: &ScoreRequest, scratch: &mut EngineScratch) -> f64 {
        if self.config.cache_capacity == 0 {
            return self.engine.score_request(request, scratch);
        }
        let shard = self.shard_of(request.pair_id);
        if let Some(score) = self.shards[shard]
            .lock()
            .expect("cache shard poisoned")
            .get(&request.pair_id)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return score;
        }
        let score = self.engine.score_request(request, scratch);
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.shards[shard]
            .lock()
            .expect("cache shard poisoned")
            .insert(request.pair_id, score);
        score
    }

    /// Scores a batch across `config.threads` scoped worker threads,
    /// preserving request order in the returned scores.
    pub fn score_batch(&self, requests: &[ScoreRequest]) -> Vec<f64> {
        let mut scores = vec![0.0f64; requests.len()];
        let threads = self.config.threads.max(1);
        if threads == 1 || requests.len() <= 1 {
            let mut scratch = self.engine.scratch();
            for (request, slot) in requests.iter().zip(&mut scores) {
                *slot = self.score_one(request, &mut scratch);
            }
            return scores;
        }
        let chunk = requests.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for (request_chunk, score_chunk) in requests.chunks(chunk).zip(scores.chunks_mut(chunk)) {
                scope.spawn(move || {
                    let mut scratch = self.engine.scratch();
                    for (request, slot) in request_chunk.iter().zip(score_chunk) {
                        *slot = self.score_one(request, &mut scratch);
                    }
                });
            }
        });
        scores
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_base::Label;
    use er_rulegen::{CmpOp, Condition, Rule};
    use learnrisk_core::{LearnRiskModel, RiskFeatureSet, RiskModelConfig};

    fn engine() -> ScoringEngine {
        let rules = vec![
            Rule::new(vec![Condition::new(0, CmpOp::Gt, 0.5)], Label::Inequivalent, 20, 0.97),
            Rule::new(vec![Condition::new(1, CmpOp::Le, 0.3)], Label::Equivalent, 15, 0.93),
        ];
        let fs = RiskFeatureSet {
            rules,
            metrics: vec![],
            expectations: vec![0.05, 0.92],
            support: vec![20, 15],
        };
        ScoringEngine::new(LearnRiskModel::new(fs, RiskModelConfig::default()))
    }

    fn requests(n: usize, distinct: u64) -> Vec<ScoreRequest> {
        (0..n)
            .map(|i| {
                let id = i as u64 % distinct;
                let x = (id as f64 * 0.37).fract();
                ScoreRequest {
                    pair_id: id,
                    metric_row: vec![x, 1.0 - x],
                    classifier_output: x,
                    machine_says_match: x >= 0.5,
                }
            })
            .collect()
    }

    #[test]
    fn batch_scores_are_identical_across_thread_counts() {
        let reqs = requests(500, 100);
        let baseline = ShardedExecutor::new(engine(), ServeConfig::default().with_threads(1)).score_batch(&reqs);
        for threads in [2, 3, 8] {
            let exec = ShardedExecutor::new(engine(), ServeConfig::default().with_threads(threads));
            let scores = exec.score_batch(&reqs);
            let bits: Vec<u64> = scores.iter().map(|s| s.to_bits()).collect();
            let base_bits: Vec<u64> = baseline.iter().map(|s| s.to_bits()).collect();
            assert_eq!(bits, base_bits, "threads = {threads}");
        }
    }

    #[test]
    fn cache_serves_repeated_pairs() {
        let exec = ShardedExecutor::new(
            engine(),
            ServeConfig {
                threads: 1,
                cache_capacity: 64,
                cache_shards: 4,
            },
        );
        let reqs = requests(300, 10); // 10 distinct pairs, replayed 30×
        let scores = exec.score_batch(&reqs);
        let stats = exec.cache_stats();
        assert_eq!(stats.misses, 10, "one miss per distinct pair");
        assert_eq!(stats.hits, 290);
        assert!(stats.hit_rate() > 0.96);
        // Cached scores equal computed scores.
        let uncached = ShardedExecutor::new(
            engine(),
            ServeConfig {
                threads: 1,
                cache_capacity: 0,
                cache_shards: 1,
            },
        );
        let plain = uncached.score_batch(&reqs);
        assert_eq!(uncached.cache_stats().hits, 0);
        for (a, b) in scores.iter().zip(&plain) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn small_capacities_still_cache() {
        // A capacity below the shard count must not silently disable caching.
        let exec = ShardedExecutor::new(
            engine(),
            ServeConfig {
                threads: 1,
                cache_capacity: 8,
                cache_shards: 16,
            },
        );
        let reqs = requests(40, 4); // 4 distinct pairs, replayed 10×
        exec.score_batch(&reqs);
        let stats = exec.cache_stats();
        assert!(stats.hits > 0, "requested capacity 8 but nothing was cached: {stats:?}");
    }

    #[test]
    fn stats_reset_keeps_cache_warm() {
        let exec = ShardedExecutor::new(engine(), ServeConfig::default().with_threads(1));
        let reqs = requests(50, 5);
        exec.score_batch(&reqs);
        exec.reset_cache_stats();
        exec.score_batch(&reqs);
        let stats = exec.cache_stats();
        assert_eq!(stats.misses, 0, "warm cache answers everything");
        assert_eq!(stats.hits, 50);
    }

    #[test]
    fn empty_and_tiny_batches_work_at_any_thread_count() {
        let exec = ShardedExecutor::new(engine(), ServeConfig::default().with_threads(7));
        assert!(exec.score_batch(&[]).is_empty());
        let one = requests(1, 1);
        assert_eq!(exec.score_batch(&one).len(), 1);
    }
}
