//! Standard two-sided decision trees and random forests.
//!
//! These are *not* part of LearnRisk itself; they implement the conventional
//! labeling-rule generation used by the HoloClean comparison (Section 7.3 of
//! the paper): a random forest is trained on the same basic metrics, and each
//! root-to-leaf path becomes a two-sided labeling rule.

use crate::condition::{CmpOp, Condition};
use crate::gini::{two_sided_gini, ClassCounts};
use crate::rule::{dedup_rules, Rule};
use er_base::rng::substream;
use er_base::Label;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the two-sided tree / random forest builder.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TwoSidedTreeConfig {
    /// Maximum tree depth (the paper uses 4 for the HoloClean rules).
    pub max_depth: usize,
    /// Minimum number of samples in a leaf (the paper uses 5).
    pub min_leaf_size: usize,
    /// Number of trees in the forest.
    pub n_trees: usize,
    /// Fraction of metrics considered at each split (feature bagging).
    pub feature_fraction: f64,
    /// Class weight applied to matching pairs (imbalance handling).
    pub match_class_weight: f64,
    /// Random seed for bagging.
    pub seed: u64,
}

impl Default for TwoSidedTreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 4,
            min_leaf_size: 5,
            n_trees: 8,
            feature_fraction: 0.7,
            match_class_weight: 10.0,
            seed: 13,
        }
    }
}

/// A node of a two-sided decision tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Leaf {
        /// Majority class of the leaf.
        label: Label,
        /// Fraction of training pairs in the leaf belonging to the majority class.
        purity: f64,
        /// Number of training pairs in the leaf.
        support: usize,
    },
    Split {
        condition: Condition,
        /// Child for pairs satisfying the condition (`<=`).
        left: Box<Node>,
        /// Child for the rest (`>`).
        right: Box<Node>,
    },
}

/// A CART-style two-sided decision tree over basic metric vectors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TwoSidedTree {
    root: Node,
}

impl TwoSidedTree {
    /// Trains a tree on a metric matrix and labels.
    pub fn fit(
        metrics: &[Vec<f64>],
        labels: &[Label],
        config: &TwoSidedTreeConfig,
        feature_mask: Option<&[usize]>,
    ) -> Self {
        assert_eq!(metrics.len(), labels.len());
        assert!(!metrics.is_empty(), "cannot fit a tree on no data");
        let all: Vec<u32> = (0..metrics.len() as u32).collect();
        let features: Vec<usize> = match feature_mask {
            Some(m) => m.to_vec(),
            None => (0..metrics[0].len()).collect(),
        };
        let root = Self::build(metrics, labels, &all, &features, 0, config);
        Self { root }
    }

    fn counts(labels: &[Label], subset: &[u32], match_weight: f64) -> ClassCounts {
        let mut c = ClassCounts::default();
        for &i in subset {
            if labels[i as usize].is_match() {
                c.matches += match_weight;
            } else {
                c.unmatches += 1.0;
            }
        }
        c
    }

    fn leaf(labels: &[Label], subset: &[u32], match_weight: f64) -> Node {
        let weighted = Self::counts(labels, subset, match_weight);
        let raw = Self::counts(labels, subset, 1.0);
        Node::Leaf {
            label: Label::from_bool(weighted.majority_is_match()),
            purity: 1.0 - raw.minority_fraction(),
            support: subset.len(),
        }
    }

    fn build(
        metrics: &[Vec<f64>],
        labels: &[Label],
        subset: &[u32],
        features: &[usize],
        depth: usize,
        config: &TwoSidedTreeConfig,
    ) -> Node {
        let counts = Self::counts(labels, subset, config.match_class_weight);
        if depth >= config.max_depth || subset.len() < 2 * config.min_leaf_size || counts.gini() == 0.0 {
            return Self::leaf(labels, subset, config.match_class_weight);
        }

        // Find the best split over the allowed features.
        let mut best: Option<(Condition, f64)> = None;
        for &metric in features {
            let mut order: Vec<u32> = subset.to_vec();
            order.sort_by(|&a, &b| {
                metrics[a as usize][metric]
                    .partial_cmp(&metrics[b as usize][metric])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let total = Self::counts(labels, subset, config.match_class_weight);
            let mut left = ClassCounts::default();
            for w in 0..order.len().saturating_sub(1) {
                let i = order[w] as usize;
                if labels[i].is_match() {
                    left.matches += config.match_class_weight;
                } else {
                    left.unmatches += 1.0;
                }
                let v = metrics[i][metric];
                let next = metrics[order[w + 1] as usize][metric];
                if next <= v + 1e-12 {
                    continue;
                }
                if w + 1 < config.min_leaf_size || order.len() - w - 1 < config.min_leaf_size {
                    continue;
                }
                let right = ClassCounts::new(total.matches - left.matches, total.unmatches - left.unmatches);
                let score = two_sided_gini(left, right);
                if best.as_ref().is_none_or(|(_, s)| score < *s) {
                    best = Some((Condition::new(metric, CmpOp::Le, (v + next) / 2.0), score));
                }
            }
        }

        let Some((condition, _)) = best else {
            return Self::leaf(labels, subset, config.match_class_weight);
        };
        let (le, gt): (Vec<u32>, Vec<u32>) = subset.iter().partition(|&&i| condition.matches(&metrics[i as usize]));
        if le.len() < config.min_leaf_size || gt.len() < config.min_leaf_size {
            return Self::leaf(labels, subset, config.match_class_weight);
        }
        Node::Split {
            condition,
            left: Box::new(Self::build(metrics, labels, &le, features, depth + 1, config)),
            right: Box::new(Self::build(metrics, labels, &gt, features, depth + 1, config)),
        }
    }

    /// Predicts the label of a metric vector.
    pub fn predict(&self, metrics: &[f64]) -> Label {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { label, .. } => return *label,
                Node::Split { condition, left, right } => {
                    node = if condition.matches(metrics) { left } else { right };
                }
            }
        }
    }

    /// Extracts every root-to-leaf path as a two-sided labeling rule.
    pub fn rules(&self) -> Vec<Rule> {
        let mut out = Vec::new();
        let mut path = Vec::new();
        Self::collect(&self.root, &mut path, &mut out);
        out
    }

    fn collect(node: &Node, path: &mut Vec<Condition>, out: &mut Vec<Rule>) {
        match node {
            Node::Leaf { label, purity, support } => {
                if !path.is_empty() {
                    out.push(Rule::new(path.clone(), *label, *support, *purity));
                }
            }
            Node::Split { condition, left, right } => {
                path.push(*condition);
                Self::collect(left, path, out);
                path.pop();
                path.push(condition.negated());
                Self::collect(right, path, out);
                path.pop();
            }
        }
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        fn count(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => count(left) + count(right),
            }
        }
        count(&self.root)
    }
}

/// A random forest of two-sided trees (bagging + feature subsampling).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomForest {
    trees: Vec<TwoSidedTree>,
}

impl RandomForest {
    /// Trains a forest.
    pub fn fit(metrics: &[Vec<f64>], labels: &[Label], config: &TwoSidedTreeConfig) -> Self {
        assert!(!metrics.is_empty(), "cannot fit a forest on no data");
        let n_features = metrics[0].len();
        let k = ((n_features as f64 * config.feature_fraction).ceil() as usize).clamp(1, n_features);
        let mut trees = Vec::with_capacity(config.n_trees);
        for t in 0..config.n_trees {
            let mut rng = substream(config.seed, 0x60 + t as u64);
            // Bootstrap sample.
            let mut sample_metrics = Vec::with_capacity(metrics.len());
            let mut sample_labels = Vec::with_capacity(labels.len());
            for _ in 0..metrics.len() {
                let i = rng.gen_range(0..metrics.len());
                sample_metrics.push(metrics[i].clone());
                sample_labels.push(labels[i]);
            }
            // Feature subsample.
            let mut features: Vec<usize> = (0..n_features).collect();
            features.shuffle(&mut rng);
            features.truncate(k);
            trees.push(TwoSidedTree::fit(
                &sample_metrics,
                &sample_labels,
                config,
                Some(&features),
            ));
        }
        Self { trees }
    }

    /// Fraction of trees voting "match".
    pub fn predict_proba(&self, metrics: &[f64]) -> f64 {
        let votes = self.trees.iter().filter(|t| t.predict(metrics).is_match()).count();
        votes as f64 / self.trees.len() as f64
    }

    /// All labeling rules of the forest (deduplicated), up to `limit` rules,
    /// highest-purity first — mirroring how the paper caps the HoloClean rule
    /// count to match LearnRisk's.
    pub fn rules(&self, limit: usize) -> Vec<Rule> {
        let mut all: Vec<Rule> = self.trees.iter().flat_map(|t| t.rules()).collect();
        all.sort_by(|a, b| {
            b.purity
                .partial_cmp(&a.purity)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.support.cmp(&a.support))
        });
        let mut deduped = dedup_rules(all);
        deduped.truncate(limit);
        deduped
    }

    /// Number of trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Whether the forest is empty.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_base::rng::seeded;
    use rand::Rng;

    fn synthetic(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<Label>) {
        let mut rng = seeded(seed);
        let mut metrics = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let is_match = rng.gen_bool(0.25);
            let sim: f64 = if is_match {
                rng.gen_range(0.65..1.0)
            } else {
                rng.gen_range(0.0..0.7)
            };
            let diff = if is_match {
                0.0
            } else if rng.gen_bool(0.6) {
                1.0
            } else {
                0.0
            };
            metrics.push(vec![sim, diff]);
            labels.push(Label::from_bool(is_match));
        }
        (metrics, labels)
    }

    #[test]
    fn tree_fits_and_predicts() {
        let (m, l) = synthetic(500, 1);
        let tree = TwoSidedTree::fit(&m, &l, &TwoSidedTreeConfig::default(), None);
        let correct = m.iter().zip(&l).filter(|(x, &y)| tree.predict(x) == y).count();
        let acc = correct as f64 / m.len() as f64;
        assert!(acc > 0.85, "tree training accuracy {acc}");
        assert!(tree.leaf_count() >= 2);
    }

    #[test]
    fn tree_rules_cover_the_space() {
        let (m, l) = synthetic(400, 2);
        let tree = TwoSidedTree::fit(&m, &l, &TwoSidedTreeConfig::default(), None);
        let rules = tree.rules();
        assert_eq!(rules.len(), tree.leaf_count());
        // Every example is covered by exactly one rule.
        for row in &m {
            let covering = rules.iter().filter(|r| r.covers(row)).count();
            assert_eq!(covering, 1, "two-sided rules must partition the space");
        }
    }

    #[test]
    fn forest_probability_is_bounded_and_accurate() {
        let (m, l) = synthetic(600, 3);
        let forest = RandomForest::fit(&m, &l, &TwoSidedTreeConfig::default());
        assert_eq!(forest.len(), TwoSidedTreeConfig::default().n_trees);
        let correct = m
            .iter()
            .zip(&l)
            .filter(|(x, &y)| (forest.predict_proba(x) >= 0.5) == y.is_match())
            .count();
        let acc = correct as f64 / m.len() as f64;
        assert!(acc > 0.85, "forest accuracy {acc}");
        for row in &m {
            let p = forest.predict_proba(row);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn forest_rule_limit_is_respected() {
        let (m, l) = synthetic(500, 4);
        let forest = RandomForest::fit(&m, &l, &TwoSidedTreeConfig::default());
        let rules = forest.rules(10);
        assert!(rules.len() <= 10);
        assert!(!rules.is_empty());
        // Sorted by purity descending.
        for w in rules.windows(2) {
            assert!(w[0].purity >= w[1].purity - 1e-9);
        }
    }

    #[test]
    fn pure_data_yields_single_leaf() {
        let m = vec![vec![0.2], vec![0.3], vec![0.4], vec![0.5]];
        let l = vec![Label::Inequivalent; 4];
        let tree = TwoSidedTree::fit(&m, &l, &TwoSidedTreeConfig::default(), None);
        assert_eq!(tree.leaf_count(), 1);
        assert!(tree.rules().is_empty(), "a single root leaf has no path conditions");
        assert_eq!(tree.predict(&[0.9]), Label::Inequivalent);
    }

    #[test]
    #[should_panic(expected = "no data")]
    fn empty_forest_panics() {
        RandomForest::fit(&[], &[], &TwoSidedTreeConfig::default());
    }
}
