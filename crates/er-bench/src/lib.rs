//! # er-bench
//!
//! Benchmark harness of the reproduction: one binary per table/figure of the
//! paper (printing the same rows/series the paper reports), the `serve_bench`
//! traffic-replay benchmark of the online engine, and Criterion benches for
//! the performance-sensitive building blocks.
//!
//! Binaries (run with
//! `cargo run -p er-bench --release --bin <name> [scale] [--threads 1,2,4]`):
//!
//! | Binary       | Reproduces |
//! |--------------|------------|
//! | `table2`     | Table 2 — dataset statistics |
//! | `fig9`       | Figure 9 — comparative AUROC on DS/AB/AG/SG × 3 ratios |
//! | `fig10`      | Figure 10 — out-of-distribution evaluation (DA2DS, AB2AG) |
//! | `fig11`      | Figure 11 — LearnRisk vs HoloClean |
//! | `fig12`      | Figure 12 — sensitivity to risk-training data size |
//! | `fig13`      | Figure 13 — scalability (rule generation / risk training / engine scoring) |
//! | `fig14`      | Figure 14 — active learning |
//! | `ablation`   | Design-choice ablations called out in DESIGN.md |
//! | `serve_bench`| Zipf traffic replay against the `er-serve` engine |
//! | `train_bench`| Factorized vs per-pair risk-training epoch benchmark |
//!
//! All binaries share one argument parser ([`parse_args`]): an optional
//! positional workload scale plus `--threads a,b,c` for the binaries that
//! exercise a multi-threaded path (`fig13`, `serve_bench`, `train_bench`),
//! and the [`env_usize`] helper for their environment overrides.

#![warn(missing_docs)]

pub mod diff;

use er_eval::ExperimentConfig;

/// Parsed command-line arguments shared by every benchmark binary.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Workload scale and seed (the seed is fixed at 2020 for
    /// reproducibility).
    pub config: ExperimentConfig,
    /// Thread counts for the serving-path binaries, from `--threads`;
    /// defaults to [`default_thread_counts`].
    pub threads: Vec<usize>,
}

/// Parses the process arguments: `[scale] [--threads a,b,c]`.
///
/// Keeps the harness's warn-don't-die behavior: an unparsable scale or
/// thread list falls back to its default with a warning on stderr, so a typo
/// cannot silently run a long experiment at the wrong configuration.
pub fn parse_args(default_scale: f64) -> BenchArgs {
    parse_args_from(std::env::args().skip(1), default_scale)
}

/// [`parse_args`] over an explicit argument list (testable form).
pub fn parse_args_from(args: impl IntoIterator<Item = String>, default_scale: f64) -> BenchArgs {
    let mut scale = default_scale;
    let mut scale_seen = false;
    let mut threads = default_thread_counts();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        if let Some(list) = arg
            .strip_prefix("--threads=")
            .map(str::to_owned)
            .or_else(|| (arg == "--threads").then(|| iter.next().unwrap_or_default()))
        {
            match parse_thread_list(&list) {
                Some(parsed) => threads = parsed,
                None => {
                    eprintln!("warning: could not parse --threads value {list:?}; using default {threads:?}");
                }
            }
        } else if !scale_seen {
            scale_seen = true;
            match arg.trim().parse::<f64>() {
                Ok(parsed) => scale = parsed,
                Err(_) => {
                    eprintln!("warning: could not parse scale argument {arg:?}; using default {default_scale}");
                }
            }
        } else {
            eprintln!("warning: ignoring unrecognized argument {arg:?}");
        }
    }
    BenchArgs {
        config: ExperimentConfig { scale, seed: 2020 },
        threads,
    }
}

/// Backwards-compatible helper: parses only the workload scale from the
/// process arguments (see [`parse_args`]).
pub fn config_from_args(default_scale: f64) -> ExperimentConfig {
    parse_args(default_scale).config
}

/// Default thread counts for the serving-path binaries: powers of two up to
/// the machine's parallelism, always including at least 1 and 2 so the
/// single- vs multi-threaded comparison is always reported.
pub fn default_thread_counts() -> Vec<usize> {
    let max = std::thread::available_parallelism().map_or(2, |n| n.get());
    let mut counts = vec![1usize];
    let mut t = 2;
    while t <= max && counts.len() < 4 {
        counts.push(t);
        t *= 2;
    }
    if counts.len() == 1 {
        counts.push(2);
    }
    counts
}

/// CPUs available to this process (1 when undeterminable) — the value the
/// `*_bench` binaries embed in their JSON so perf-trajectory consumers can
/// tell single-CPU container runs apart from real multicore results.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Parses a `usize` environment variable, keeping the harness's
/// warn-don't-die behavior: unset uses the default silently, an unparsable
/// value warns on stderr and uses the default.  Shared by the `*_bench`
/// binaries' request/size overrides.
pub fn env_usize(name: &str, default: usize) -> usize {
    match std::env::var(name) {
        Err(_) => default,
        Ok(raw) => match raw.trim().parse() {
            Ok(v) => v,
            Err(_) => {
                eprintln!("warning: could not parse {name}={raw:?}; using default {default}");
                default
            }
        },
    }
}

/// A DS-style risk-training workload shared by `train_bench` and the
/// `train_epoch` Criterion bench: rules generated from the data, risk inputs
/// labeled by a synthetic classifier, so both time the identical setup.
pub struct TrainWorkload {
    /// Untrained model over the generated rule features.
    pub model: learnrisk_core::LearnRiskModel,
    /// Risk-training inputs for every workload pair.
    pub inputs: Vec<learnrisk_core::PairRiskInput>,
    /// Number of mislabeled pairs (risk positives) among the inputs.
    pub mislabeled: usize,
}

impl TrainWorkload {
    /// Number of generated rule features.
    pub fn rule_count(&self) -> usize {
        self.model.features.len()
    }
}

/// Builds a [`TrainWorkload`]: generates DS at `config.scale`, derives rules
/// and the risk feature set from the data, then labels every pair with a
/// synthetic classifier of the given `accuracy` (confidence 0.8 / 0.2) so
/// mislabeled pairs exist and the rank-pair list is non-trivial.
pub fn train_workload(config: &ExperimentConfig, accuracy: f64) -> TrainWorkload {
    let ds = er_datasets::generate_benchmark(er_datasets::BenchmarkId::DblpScholar, config.scale, config.seed);
    let workload = &ds.workload;
    let evaluator =
        er_similarity::MetricEvaluator::from_pairs(std::sync::Arc::clone(&workload.left_schema), workload.pairs());
    let rows = evaluator.eval_pairs(workload.pairs());
    let labels: Vec<er_base::Label> = workload.pairs().iter().map(|p| p.truth).collect();
    let rules = er_rulegen::generate_rules(&rows, &labels, er_rulegen::OneSidedTreeConfig::default());
    let feature_set =
        learnrisk_core::RiskFeatureSet::from_training(rules, evaluator.metrics().to_vec(), &rows, &labels);
    let model = learnrisk_core::LearnRiskModel::new(feature_set, Default::default());
    let mut prob_rng = er_base::rng::substream(config.seed, 0x7B);
    let probs = er_eval::synthetic_classifier_probs(&labels, accuracy, &mut prob_rng);
    let labeled = er_base::LabeledWorkload::from_probabilities("train-workload", workload.pairs().to_vec(), &probs);
    let inputs = er_eval::build_inputs_from_labeled(&evaluator, &model.features, &labeled);
    TrainWorkload {
        model,
        inputs,
        mislabeled: labeled.mislabeled_count(),
    }
}

/// The pre-SoA portfolio hot path, kept verbatim as the aggregation
/// benchmark's baseline (exactly as `loss_and_gradient` is kept as
/// `train_bench`'s per-pair baseline): three *sequential* reduction passes
/// per aggregate and ~5 divisions per component in the gradient terms —
/// the arithmetic the SoA rebuild replaced with one fused lane-chunked pass
/// and hoisted per-portfolio reciprocals.
mod pre_soa {
    use learnrisk_core::{ComponentGradients, PortfolioComponent, PortfolioDistribution};

    pub fn aggregate(components: &[PortfolioComponent]) -> PortfolioDistribution {
        let weight_sum: f64 = components.iter().map(|c| c.weight).sum();
        let mean = components.iter().map(|c| c.weight * c.mean).sum::<f64>() / weight_sum;
        let variance = components
            .iter()
            .map(|c| c.weight * c.weight * c.std * c.std)
            .sum::<f64>()
            / (weight_sum * weight_sum);
        PortfolioDistribution {
            mean,
            variance,
            weight_sum,
        }
    }

    pub fn component_gradients(
        components: &[PortfolioComponent],
        aggregate: &PortfolioDistribution,
        j: usize,
    ) -> ComponentGradients {
        let c = components[j];
        let s = aggregate.weight_sum;
        let sigma_i = aggregate.std().max(1e-9);
        let d_mean_d_weight = (c.mean - aggregate.mean) / s;
        let d_var_d_weight = 2.0 * (c.weight * c.std * c.std - s * aggregate.variance) / (s * s);
        let d_std_d_weight = d_var_d_weight / (2.0 * sigma_i);
        let d_var_d_std = 2.0 * c.weight * c.weight * c.std / (s * s);
        let d_std_d_component_std = d_var_d_std / (2.0 * sigma_i);
        let d_mean_d_component_mean = c.weight / s;
        ComponentGradients {
            d_mean_d_weight,
            d_std_d_weight,
            d_std_d_component_std,
            d_mean_d_component_mean,
        }
    }
}

/// SoA-vs-AoS portfolio-math timing embedded in both `*_bench` JSON schemas
/// (the perf-trajectory signal the CI `perf-gate` job guards).
///
/// The timed kernel is the per-input portfolio work of the hot paths:
/// aggregate the portfolio (Eq. 2–3) and evaluate every component's gradient
/// terms — what the trainer's gradient pass does per λ-active input, and
/// (the aggregation part) what serving does per request.  `baseline_secs`
/// times the pre-SoA AoS implementation ([`mod@self`]-private `pre_soa`:
/// sequential three-pass reductions, division-heavy per-slot gradients);
/// `soa_secs` times the canonical [`learnrisk_core::ComponentBlock`] path
/// (fused lane-chunked reduction, reciprocal-hoisted bulk gradient terms).
/// `soa_speedup` is their ratio; ≥ 1.3x single-thread at default scale is
/// the repo's acceptance floor.
///
/// Construction first asserts (a) the SoA path is bit-identical to the
/// in-repo AoS reference on every portfolio, and (b) the pre-SoA baseline
/// agrees with the canonical arithmetic within floating-point reassociation
/// tolerance — so the reported speedup can never come from diverging math.
#[derive(Debug, serde::Serialize)]
pub struct AggregationBench {
    /// Portfolios in the timed pool (one per risk input).
    pub portfolios: usize,
    /// Total components across the pool.
    pub total_components: usize,
    /// Mean components per portfolio (the SIMD-relevant size).
    pub mean_components: f64,
    /// Full pool sweeps per timed repetition.
    pub inner_iters: usize,
    /// Timing repetitions (best is reported).
    pub reps: usize,
    /// Best pre-SoA (sequential AoS) sweep seconds.
    pub baseline_secs: f64,
    /// Best canonical SoA ([`learnrisk_core::ComponentBlock`]) sweep seconds.
    pub soa_secs: f64,
    /// `baseline_secs / soa_secs` — what the SoA rebuild bought the
    /// per-input portfolio math.
    pub soa_speedup: f64,
}

/// Times the per-input portfolio math (aggregate + per-component gradient
/// terms) over the model's portfolio of every input, pre-SoA AoS baseline vs
/// canonical SoA (see [`AggregationBench`]).
///
/// # Panics
/// Panics if `inputs` is empty, if the SoA path disagrees with the AoS
/// reference on any bit, or if the pre-SoA baseline drifts beyond
/// reassociation tolerance — a disagreement means a kernel was broken, and
/// no timing of it is meaningful.
pub fn aggregation_bench(
    model: &learnrisk_core::LearnRiskModel,
    inputs: &[learnrisk_core::PairRiskInput],
    reps: usize,
) -> AggregationBench {
    use learnrisk_core::{aggregate, component_gradients, ComponentBlock, GradientBlock, PortfolioComponent};
    use std::time::Instant;

    assert!(!inputs.is_empty(), "aggregation_bench needs at least one portfolio");
    // Materialize every portfolio once per layout, so the timings cover the
    // portfolio math only (the fill path is shared by both layouts).
    let aos: Vec<Vec<PortfolioComponent>> = inputs.iter().map(|i| model.components(i)).collect();
    let soa: Vec<ComponentBlock> = inputs
        .iter()
        .map(|i| {
            let mut block = ComponentBlock::new();
            model.components_into_block(i, &mut block);
            block
        })
        .collect();
    let mut terms = GradientBlock::new();
    for (comps, block) in aos.iter().zip(&soa) {
        let a = aggregate(comps);
        let s = block.aggregate();
        assert!(
            a.mean.to_bits() == s.mean.to_bits()
                && a.variance.to_bits() == s.variance.to_bits()
                && a.weight_sum.to_bits() == s.weight_sum.to_bits(),
            "SoA aggregation diverged from the AoS reference; refusing to time a broken kernel"
        );
        let b = pre_soa::aggregate(comps);
        assert!(
            (a.mean - b.mean).abs() <= 1e-9 && (a.variance - b.variance).abs() <= 1e-9,
            "pre-SoA baseline drifted from the canonical aggregate: {} vs {}",
            b.mean,
            a.mean
        );
        block.component_gradients_into(&s, &mut terms);
        for j in 0..comps.len() {
            let canonical = block.component_gradients(&s, j);
            let reference = component_gradients(comps, &a, j);
            assert!(
                canonical == reference && canonical == terms.gradients(j),
                "SoA gradient terms diverged from the AoS reference at component {j}"
            );
            let legacy = pre_soa::component_gradients(comps, &b, j);
            assert!(
                (canonical.d_mean_d_weight - legacy.d_mean_d_weight).abs() <= 1e-9
                    && (canonical.d_std_d_weight - legacy.d_std_d_weight).abs() <= 1e-9
                    && (canonical.d_std_d_component_std - legacy.d_std_d_component_std).abs() <= 1e-9
                    && (canonical.d_mean_d_component_mean - legacy.d_mean_d_component_mean).abs() <= 1e-9,
                "pre-SoA gradient baseline drifted from the canonical terms at component {j}"
            );
        }
    }
    let total_components: usize = aos.iter().map(Vec::len).sum();
    // Size each timed repetition to several hundred thousand processed
    // components so the sweep dwarfs timer resolution even at tiny scales.
    let inner_iters = (800_000 / total_components.max(1)).max(1);
    let timed = |sweep: &mut dyn FnMut() -> f64| -> f64 {
        let start = Instant::now();
        let mut acc = 0.0;
        for _ in 0..inner_iters {
            acc += sweep();
        }
        std::hint::black_box(acc);
        start.elapsed().as_secs_f64()
    };
    let mut baseline_sweep = || {
        let mut acc = 0.0;
        for comps in &aos {
            let agg = pre_soa::aggregate(comps);
            for j in 0..comps.len() {
                let g = pre_soa::component_gradients(comps, &agg, j);
                acc += g.d_mean_d_weight + g.d_std_d_weight + g.d_std_d_component_std + g.d_mean_d_component_mean;
            }
            acc += agg.mean;
        }
        acc
    };
    let mut soa_sweep = || {
        let mut acc = 0.0;
        for block in &soa {
            let agg = block.aggregate();
            block.component_gradients_into(&agg, &mut terms);
            for j in 0..block.len() {
                acc += terms.d_mean_d_weight[j]
                    + terms.d_std_d_weight[j]
                    + terms.d_std_d_component_std[j]
                    + terms.d_mean_d_component_mean[j];
            }
            acc += agg.mean;
        }
        acc
    };
    // Interleave the repetitions of the two sides so a CPU-frequency or
    // noisy-neighbor episode cannot hit only one of them, then take each
    // side's best.
    let (mut baseline_secs, mut soa_secs) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps.max(1) {
        baseline_secs = baseline_secs.min(timed(&mut baseline_sweep));
        soa_secs = soa_secs.min(timed(&mut soa_sweep));
    }
    AggregationBench {
        portfolios: inputs.len(),
        total_components,
        mean_components: total_components as f64 / inputs.len() as f64,
        inner_iters,
        reps: reps.max(1),
        baseline_secs,
        soa_secs,
        soa_speedup: baseline_secs / soa_secs.max(1e-12),
    }
}

fn parse_thread_list(list: &str) -> Option<Vec<usize>> {
    let parsed: Option<Vec<usize>> = list
        .split(',')
        .map(|part| part.trim().parse::<usize>().ok().filter(|&t| t > 0))
        .collect();
    parsed.filter(|v| !v.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> BenchArgs {
        parse_args_from(list.iter().map(|s| s.to_string()), 0.03)
    }

    #[test]
    fn default_scale_is_used_without_args() {
        let a = args(&[]);
        assert_eq!(a.config.scale, 0.03);
        assert_eq!(a.config.seed, 2020);
        assert!(a.threads.len() >= 2, "always at least two thread counts");
        assert_eq!(a.threads[0], 1);
    }

    #[test]
    fn positional_scale_is_parsed() {
        assert_eq!(args(&["0.1"]).config.scale, 0.1);
    }

    #[test]
    fn bad_scale_falls_back_with_default() {
        assert_eq!(args(&["zoom"]).config.scale, 0.03);
    }

    #[test]
    fn threads_flag_both_spellings() {
        assert_eq!(args(&["--threads", "1,2,8"]).threads, vec![1, 2, 8]);
        assert_eq!(args(&["--threads=4"]).threads, vec![4]);
        assert_eq!(args(&["0.2", "--threads", "2, 3"]).threads, vec![2, 3]);
    }

    #[test]
    fn bad_threads_fall_back_to_defaults() {
        let defaults = default_thread_counts();
        assert_eq!(args(&["--threads", "fast"]).threads, defaults);
        assert_eq!(args(&["--threads", "0"]).threads, defaults);
        assert_eq!(args(&["--threads", ""]).threads, defaults);
        assert_eq!(args(&["--threads"]).threads, defaults);
    }

    #[test]
    fn extra_positionals_are_ignored_not_fatal() {
        let a = args(&["0.5", "unexpected"]);
        assert_eq!(a.config.scale, 0.5);
    }
}
