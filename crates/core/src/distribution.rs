//! Probability distributions used by the risk model.
//!
//! The equivalence probability of a pair is modeled as a normal distribution
//! truncated to `[0, 1]` (Section 4.2 of the paper).  The normal approximation
//! is justified by the Beta/Normal approximation for large pseudo-sample sizes
//! (`α + β ≥ 10`).

use er_base::stats::{std_normal_cdf, std_normal_pdf, std_normal_quantile};
use serde::{Deserialize, Serialize};

/// A (untruncated) normal distribution `N(mean, std²)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Normal {
    /// Mean.
    pub mean: f64,
    /// Standard deviation (non-negative).
    pub std: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Panics
    /// Panics when `std` is negative or not finite.
    pub fn new(mean: f64, std: f64) -> Self {
        assert!(
            std >= 0.0 && std.is_finite(),
            "standard deviation must be non-negative, got {std}"
        );
        Self { mean, std }
    }

    /// Cumulative distribution function.
    pub fn cdf(&self, x: f64) -> f64 {
        if self.std == 0.0 {
            return if x >= self.mean { 1.0 } else { 0.0 };
        }
        std_normal_cdf((x - self.mean) / self.std)
    }

    /// Probability density function.
    pub fn pdf(&self, x: f64) -> f64 {
        if self.std == 0.0 {
            return if (x - self.mean).abs() < f64::EPSILON {
                f64::INFINITY
            } else {
                0.0
            };
        }
        std_normal_pdf((x - self.mean) / self.std) / self.std
    }

    /// Quantile (inverse CDF) at probability `p ∈ (0, 1)`.
    pub fn quantile(&self, p: f64) -> f64 {
        if self.std == 0.0 {
            return self.mean;
        }
        self.mean + self.std * std_normal_quantile(p)
    }

    /// Approximates a `Beta(α, β)` distribution by a normal with matched
    /// moments — the construction the paper uses to motivate the normal model
    /// of equivalence probabilities.
    pub fn from_beta(alpha: f64, beta: f64) -> Self {
        assert!(alpha > 0.0 && beta > 0.0, "Beta parameters must be positive");
        let mean = alpha / (alpha + beta);
        let var = alpha * beta / ((alpha + beta).powi(2) * (alpha + beta + 1.0));
        Self::new(mean, var.sqrt())
    }
}

/// A normal distribution truncated to the interval `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TruncatedNormal {
    /// The underlying (untruncated) normal.
    pub base: Normal,
    /// Lower truncation bound.
    pub lo: f64,
    /// Upper truncation bound.
    pub hi: f64,
}

impl TruncatedNormal {
    /// Truncates a normal to `[0, 1]` — the form used for equivalence
    /// probabilities.
    pub fn unit(base: Normal) -> Self {
        Self { base, lo: 0.0, hi: 1.0 }
    }

    /// Creates a truncated normal on `[lo, hi]`.
    pub fn new(base: Normal, lo: f64, hi: f64) -> Self {
        assert!(lo < hi, "truncation interval must be non-empty");
        Self { base, lo, hi }
    }

    /// Normalization constant `Φ((hi-μ)/σ) - Φ((lo-μ)/σ)`.
    fn mass(&self) -> f64 {
        (self.base.cdf(self.hi) - self.base.cdf(self.lo)).max(1e-12)
    }

    /// CDF of the truncated distribution.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= self.lo {
            return 0.0;
        }
        if x >= self.hi {
            return 1.0;
        }
        (self.base.cdf(x) - self.base.cdf(self.lo)) / self.mass()
    }

    /// Quantile of the truncated distribution at `p ∈ (0, 1)`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "p must be in [0,1]");
        if self.base.std == 0.0 {
            return self.base.mean.clamp(self.lo, self.hi);
        }
        if p <= 0.0 {
            return self.lo;
        }
        if p >= 1.0 {
            return self.hi;
        }
        let target = self.base.cdf(self.lo) + p * self.mass();
        self.base
            .quantile(target.clamp(1e-12, 1.0 - 1e-12))
            .clamp(self.lo, self.hi)
    }

    /// Mean of the truncated distribution.
    pub fn mean(&self) -> f64 {
        if self.base.std == 0.0 {
            return self.base.mean.clamp(self.lo, self.hi);
        }
        let a = (self.lo - self.base.mean) / self.base.std;
        let b = (self.hi - self.base.mean) / self.base.std;
        let z = (std_normal_cdf(b) - std_normal_cdf(a)).max(1e-12);
        self.base.mean + self.base.std * (std_normal_pdf(a) - std_normal_pdf(b)) / z
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_cdf_quantile_roundtrip() {
        let n = Normal::new(0.6, 0.1);
        for &p in &[0.05, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let x = n.quantile(p);
            assert!((n.cdf(x) - p).abs() < 1e-6, "p={p}");
        }
        assert!((n.quantile(0.5) - 0.6).abs() < 1e-6);
    }

    #[test]
    fn degenerate_normal() {
        let n = Normal::new(0.3, 0.0);
        assert_eq!(n.cdf(0.2), 0.0);
        assert_eq!(n.cdf(0.4), 1.0);
        assert_eq!(n.quantile(0.9), 0.3);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_std_panics() {
        Normal::new(0.0, -1.0);
    }

    #[test]
    fn beta_approximation_moments() {
        let n = Normal::from_beta(30.0, 70.0);
        assert!((n.mean - 0.3).abs() < 1e-12);
        let expected_var: f64 = 30.0 * 70.0 / (100.0f64.powi(2) * 101.0);
        assert!((n.std - expected_var.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn truncated_quantile_is_within_bounds() {
        let t = TruncatedNormal::unit(Normal::new(0.9, 0.3));
        for &p in &[0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            let q = t.quantile(p);
            assert!((0.0..=1.0).contains(&q), "q={q} at p={p}");
        }
        // Monotone in p.
        assert!(t.quantile(0.9) >= t.quantile(0.5));
        assert!(t.quantile(0.5) >= t.quantile(0.1));
    }

    #[test]
    fn truncated_cdf_quantile_roundtrip() {
        let t = TruncatedNormal::unit(Normal::new(0.4, 0.2));
        for &p in &[0.1, 0.3, 0.5, 0.7, 0.9] {
            let x = t.quantile(p);
            assert!((t.cdf(x) - p).abs() < 1e-5, "p={p} x={x} cdf={}", t.cdf(x));
        }
        assert_eq!(t.cdf(-0.1), 0.0);
        assert_eq!(t.cdf(1.1), 1.0);
    }

    #[test]
    fn truncation_shifts_mean_toward_interval() {
        // A normal centered above 1 has a truncated mean below 1.
        let t = TruncatedNormal::unit(Normal::new(1.2, 0.3));
        let m = t.mean();
        assert!(m < 1.0 && m > 0.5, "mean {m}");
        // A symmetric-in-range normal keeps its mean.
        let t2 = TruncatedNormal::unit(Normal::new(0.5, 0.1));
        assert!((t2.mean() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn truncated_degenerate_clamps() {
        let t = TruncatedNormal::unit(Normal::new(1.4, 0.0));
        assert_eq!(t.quantile(0.5), 1.0);
        assert_eq!(t.mean(), 1.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn invalid_truncation_interval_panics() {
        TruncatedNormal::new(Normal::new(0.0, 1.0), 1.0, 0.0);
    }
}
