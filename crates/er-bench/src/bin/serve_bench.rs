//! `serve_bench` — traffic replay against the `er-serve` online engine.
//!
//! End to end: trains a LearnRisk model on a synthetic DS-style workload,
//! exports it as a versioned artifact, loads the artifact back, compiles the
//! scoring engine, verifies the round trip is bit-exact, then replays a
//! Zipf-skewed request stream at each `--threads` count and reports
//! throughput plus p50/p95/p99 service latency. Results are printed as a
//! table and written as machine-readable JSON (default `out/serve_bench.json`,
//! override with `SERVE_BENCH_JSON`; request count via
//! `SERVE_BENCH_REQUESTS`).
//!
//! Usage: `cargo run -p er-bench --release --bin serve_bench [scale] [--threads 1,2,4]`

use er_base::SplitRatio;
use er_classifier::{MatcherKind, TrainConfig};
use er_datasets::{generate_benchmark, BenchmarkId};
use er_eval::{build_score_requests, export_and_load_engine, run_pipeline, verify_round_trip, PipelineConfig};
use er_serve::{run_replay, zipf_stream, ReplayConfig, ReplayReport, ServeConfig, ShardedExecutor};
use learnrisk_core::{PairRiskInput, RiskTrainConfig};
use serde::Serialize;
use std::path::PathBuf;

/// Machine-readable result of one `serve_bench` invocation (the
/// `BENCH_*.json` perf-trajectory format). `runs_uncached` measures pure
/// scoring scalability (cache off); `runs_cached` measures the production
/// regime where the LRU cache absorbs the Zipf head.
#[derive(Debug, Serialize)]
struct ServeBenchSummary {
    scale: f64,
    seed: u64,
    /// CPUs available to the benchmarking process — lets perf-trajectory
    /// consumers tell single-CPU container runs apart from real multicore
    /// results.
    available_parallelism: usize,
    pool_pairs: usize,
    rule_count: usize,
    requests: usize,
    zipf_exponent: f64,
    round_trip_bit_exact: bool,
    /// SoA-vs-AoS portfolio-aggregation timing over the served pairs'
    /// portfolios — the layout win of the engine's per-request hot path.
    aggregation: er_bench::AggregationBench,
    runs_uncached: Vec<ReplayReport>,
    runs_cached: Vec<ReplayReport>,
}

fn main() {
    let args = er_bench::parse_args(0.02);
    let requests = er_bench::env_usize("SERVE_BENCH_REQUESTS", 40_000);
    let json_path = PathBuf::from(std::env::var("SERVE_BENCH_JSON").unwrap_or_else(|_| "out/serve_bench.json".into()));

    // --- train ------------------------------------------------------------
    println!(
        "serve_bench: training on DS at scale {} (threads {:?}, {requests} requests)",
        args.config.scale, args.threads
    );
    let ds = generate_benchmark(BenchmarkId::DblpScholar, args.config.scale, args.config.seed);
    let pipeline = PipelineConfig {
        matcher: MatcherKind::Logistic,
        matcher_config: TrainConfig {
            epochs: 25,
            ..Default::default()
        },
        risk_train_config: RiskTrainConfig {
            epochs: 80,
            ..Default::default()
        },
        // The serving benchmark only needs the LearnRisk model; keep the
        // Uncertainty baseline's ensemble minimal.
        ensemble_members: 2,
        seed: args.config.seed,
        ..Default::default()
    };
    let (result, artifacts) = run_pipeline(&ds.workload, SplitRatio::new(3, 2, 5), &pipeline);
    println!(
        "serve_bench: trained model with {} rules (classifier F1 {:.3})",
        result.rule_count, result.classifier_f1
    );

    // --- export → load → verify -------------------------------------------
    let artifact_path = json_path.with_file_name("serve_model.json");
    let (_, engine) = export_and_load_engine(&artifacts, &artifact_path).unwrap_or_else(|e| {
        panic!("artifact round trip through {} failed: {e}", artifact_path.display());
    });
    let pool = build_score_requests(&artifacts.evaluator, &artifacts.matcher, ds.workload.pairs());
    let check = verify_round_trip(&artifacts.risk_model, &engine, &pool);
    match &check {
        Ok(()) => println!(
            "serve_bench: artifact round trip bit-exact on {} pairs ({})",
            pool.len(),
            artifact_path.display()
        ),
        Err((i, served, expected)) => {
            panic!("artifact round trip diverged on pair {i}: served {served}, expected {expected}")
        }
    }

    // --- aggregation micro-benchmark --------------------------------------
    // Resolve each request's rule coverage once through the compiled index
    // (exactly what the engine does per request), then time the SoA-vs-AoS
    // aggregation of the resulting portfolios.
    let serve_inputs: Vec<PairRiskInput> = pool
        .iter()
        .map(|r| PairRiskInput {
            rule_indices: engine.index().matching_rules(&r.metric_row),
            classifier_output: r.classifier_output,
            machine_says_match: r.machine_says_match,
            risk_label: 0,
        })
        .collect();
    let aggregation = er_bench::aggregation_bench(engine.model(), &serve_inputs, 5);
    println!(
        "serve_bench: SoA aggregation speedup {:.2}x over AoS ({} portfolios, {:.1} components each)",
        aggregation.soa_speedup, aggregation.portfolios, aggregation.mean_components
    );

    // --- replay -----------------------------------------------------------
    let stream = zipf_stream(
        &pool,
        &ReplayConfig {
            requests,
            zipf_exponent: 1.1,
            seed: args.config.seed,
        },
    );
    let run_mode = |label: &str, cache_capacity: usize| -> Vec<ReplayReport> {
        println!();
        println!("-- {label} --");
        println!(
            "{:>8} {:>14} {:>10} {:>10} {:>10} {:>10} {:>8}",
            "Threads", "Requests/s", "p50 (µs)", "p95 (µs)", "p99 (µs)", "max (µs)", "Hit rate"
        );
        let mut runs = Vec::new();
        for &threads in &args.threads {
            let config = ServeConfig {
                cache_capacity,
                ..ServeConfig::default().with_threads(threads)
            };
            let executor = ShardedExecutor::new(engine.clone(), config);
            let report = run_replay(&executor, &stream);
            println!(
                "{:>8} {:>14.0} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>7.1}%",
                report.threads,
                report.throughput_rps,
                report.latency.p50_us,
                report.latency.p95_us,
                report.latency.p99_us,
                report.latency.max_us,
                report.cache_hit_rate * 100.0
            );
            runs.push(report);
        }
        runs
    };
    // Cache off: every request is scored, so this measures how the engine
    // itself scales with threads. Cache on: the production regime, where the
    // LRU absorbs the Zipf head and throughput is lookup-bound.
    let runs_uncached = run_mode("scoring (cache off)", 0);
    let runs_cached = run_mode("cached serving (LRU on)", ServeConfig::default().cache_capacity);

    // --- summary ----------------------------------------------------------
    if let Some(single) = runs_uncached.iter().find(|r| r.threads == 1) {
        let best = runs_uncached
            .iter()
            .max_by(|a, b| a.throughput_rps.total_cmp(&b.throughput_rps))
            .expect("at least one run");
        println!();
        println!(
            "serve_bench: best scoring throughput {:.0} req/s at {} threads ({:.2}× single-threaded)",
            best.throughput_rps,
            best.threads,
            best.throughput_rps / single.throughput_rps.max(1e-9),
        );
        let cores = er_bench::available_parallelism();
        if cores == 1 {
            println!(
                "serve_bench: note — only 1 CPU is available to this process; \
                 thread counts above 1 time-slice a single core and cannot show a speedup here"
            );
        }
    }

    let summary = ServeBenchSummary {
        scale: args.config.scale,
        seed: args.config.seed,
        available_parallelism: er_bench::available_parallelism(),
        pool_pairs: pool.len(),
        rule_count: result.rule_count,
        requests,
        zipf_exponent: 1.1,
        round_trip_bit_exact: check.is_ok(),
        aggregation,
        runs_uncached,
        runs_cached,
    };
    if let Some(parent) = json_path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
    }
    std::fs::write(&json_path, serde::json::to_string_pretty(&summary)).expect("write serve_bench JSON");
    println!("serve_bench: wrote {}", json_path.display());
}
