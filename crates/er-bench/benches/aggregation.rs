//! Criterion micro-benchmarks of portfolio aggregation and the
//! per-component gradient terms, AoS reference vs SoA `ComponentBlock` —
//! the building block behind both the trainer's per-input passes and the
//! serving engine's per-request scoring.  Synthetic portfolio sizes bracket
//! the lane width; the workload-derived group times the exact portfolios the
//! DS workload produces (what `train_bench`/`serve_bench` embed in their
//! JSON as `aggregation.soa_speedup`).

use criterion::{criterion_group, criterion_main, BenchmarkId as CriterionId, Criterion};
use er_eval::ExperimentConfig;
use learnrisk_core::{aggregate, component_gradients, ComponentBlock, GradientBlock, PortfolioComponent};

/// Deterministic synthetic portfolio of `n` components.
fn portfolio(n: usize) -> Vec<PortfolioComponent> {
    (0..n)
        .map(|i| {
            let x = ((i * 7 + 3) % 97) as f64 / 97.0;
            PortfolioComponent {
                weight: 0.1 + x,
                mean: x,
                std: 0.05 + x * 0.2,
            }
        })
        .collect()
}

fn block_of(components: &[PortfolioComponent]) -> ComponentBlock {
    let mut block = ComponentBlock::new();
    block.copy_from(components);
    block
}

fn bench_aggregate(c: &mut Criterion) {
    let mut group = c.benchmark_group("portfolio/aggregate");
    for &n in &[4usize, 8, 16, 32, 64] {
        let comps = portfolio(n);
        let block = block_of(&comps);
        group.bench_with_input(CriterionId::new("aos", n), &n, |b, _| {
            b.iter(|| criterion::black_box(aggregate(&comps).mean))
        });
        group.bench_with_input(CriterionId::new("soa", n), &n, |b, _| {
            b.iter(|| criterion::black_box(block.aggregate().mean))
        });
    }
    group.finish();
}

fn bench_gradient_terms(c: &mut Criterion) {
    let mut group = c.benchmark_group("portfolio/gradient_terms");
    for &n in &[4usize, 16, 64] {
        let comps = portfolio(n);
        let block = block_of(&comps);
        let agg = aggregate(&comps);
        group.bench_with_input(CriterionId::new("aos_per_slot", n), &n, |b, _| {
            b.iter(|| {
                let mut acc = 0.0;
                for j in 0..comps.len() {
                    acc += component_gradients(&comps, &agg, j).d_std_d_weight;
                }
                criterion::black_box(acc)
            })
        });
        group.bench_with_input(CriterionId::new("soa_bulk", n), &n, |b, _| {
            let mut terms = GradientBlock::new();
            b.iter(|| {
                block.component_gradients_into(&agg, &mut terms);
                criterion::black_box(terms.d_std_d_weight.iter().sum::<f64>())
            })
        });
    }
    group.finish();
}

fn bench_workload_portfolios(c: &mut Criterion) {
    // The DS-derived portfolios the *_bench binaries time: fill + aggregate
    // per input, the serving engine's per-request portfolio math.
    let workload = er_bench::train_workload(&ExperimentConfig { scale: 0.02, seed: 9 }, 0.8);
    let (model, inputs) = (&workload.model, &workload.inputs);
    let mut group = c.benchmark_group("portfolio/workload_scoring");
    group.sample_size(10);
    group.bench_function("aos_fill_and_aggregate", |b| {
        let mut comps = Vec::new();
        b.iter(|| {
            let mut acc = 0.0;
            for input in inputs {
                model.components_into(input, &mut comps);
                acc += aggregate(&comps).mean;
            }
            criterion::black_box(acc)
        })
    });
    group.bench_function("soa_fill_and_aggregate", |b| {
        let mut block = ComponentBlock::new();
        b.iter(|| {
            let mut acc = 0.0;
            for input in inputs {
                model.components_into_block(input, &mut block);
                acc += block.aggregate().mean;
            }
            criterion::black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_aggregate,
    bench_gradient_terms,
    bench_workload_portfolios
);
criterion_main!(benches);
