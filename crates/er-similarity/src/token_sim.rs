//! Token- and set-based similarity metrics.

use crate::edit::jaro_winkler;
use std::collections::{BTreeMap, HashMap, HashSet};

/// Jaccard index of two token multisets (treated as sets).
pub fn jaccard<S: AsRef<str>>(a: &[S], b: &[S]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let sa: HashSet<&str> = a.iter().map(AsRef::as_ref).collect();
    let sb: HashSet<&str> = b.iter().map(AsRef::as_ref).collect();
    let inter = sa.intersection(&sb).count();
    let union = sa.union(&sb).count();
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

/// Dice coefficient `2|A∩B| / (|A| + |B|)` over token sets.
pub fn dice<S: AsRef<str>>(a: &[S], b: &[S]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let sa: HashSet<&str> = a.iter().map(AsRef::as_ref).collect();
    let sb: HashSet<&str> = b.iter().map(AsRef::as_ref).collect();
    let denom = sa.len() + sb.len();
    if denom == 0 {
        return 1.0;
    }
    2.0 * sa.intersection(&sb).count() as f64 / denom as f64
}

/// Overlap coefficient `|A∩B| / min(|A|, |B|)` over token sets.
pub fn overlap<S: AsRef<str>>(a: &[S], b: &[S]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let sa: HashSet<&str> = a.iter().map(AsRef::as_ref).collect();
    let sb: HashSet<&str> = b.iter().map(AsRef::as_ref).collect();
    let min = sa.len().min(sb.len());
    if min == 0 {
        return 0.0;
    }
    sa.intersection(&sb).count() as f64 / min as f64
}

/// Cosine similarity of term-frequency vectors built from the token lists.
pub fn cosine_tf<S: AsRef<str>>(a: &[S], b: &[S]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    fn count<S: AsRef<str>>(xs: &[S]) -> BTreeMap<&str, f64> {
        let mut m: BTreeMap<&str, f64> = BTreeMap::new();
        for x in xs {
            *m.entry(x.as_ref()).or_insert(0.0) += 1.0;
        }
        m
    }
    let ca = count(a);
    let cb = count(b);
    let mut dot = 0.0;
    for (t, &wa) in &ca {
        if let Some(&wb) = cb.get(t) {
            dot += wa * wb;
        }
    }
    let na: f64 = ca.values().map(|w| w * w).sum::<f64>().sqrt();
    let nb: f64 = cb.values().map(|w| w * w).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// Monge–Elkan similarity: for each token of `a`, the best Jaro–Winkler match
/// in `b`, averaged.  Tolerant to token-level typos and reorderings, useful for
/// person-name lists.
pub fn monge_elkan<S: AsRef<str>>(a: &[S], b: &[S]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for ta in a {
        let mut best = 0.0f64;
        for tb in b {
            best = best.max(jaro_winkler(ta.as_ref(), tb.as_ref()));
        }
        total += best;
    }
    total / a.len() as f64
}

/// Symmetric Monge–Elkan: the mean of both directions, making the metric
/// order-independent.
pub fn monge_elkan_sym<S: AsRef<str>>(a: &[S], b: &[S]) -> f64 {
    (monge_elkan(a, b) + monge_elkan(b, a)) / 2.0
}

/// A corpus-level inverse-document-frequency table over tokens.
///
/// `diff-key-token` and TF-IDF cosine need to know which tokens are
/// *discriminating*; IDF computed over all attribute values of a workload
/// provides that signal.
#[derive(Debug, Clone, Default)]
pub struct IdfTable {
    doc_count: usize,
    doc_freq: HashMap<String, usize>,
}

impl IdfTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one document's tokens (counted once per document).
    pub fn add_document<S: AsRef<str>>(&mut self, tokens: &[S]) {
        self.doc_count += 1;
        let uniq: HashSet<&str> = tokens.iter().map(AsRef::as_ref).collect();
        for t in uniq {
            *self.doc_freq.entry(t.to_owned()).or_insert(0) += 1;
        }
    }

    /// Number of documents added.
    pub fn documents(&self) -> usize {
        self.doc_count
    }

    /// Smoothed IDF of a token: `ln((1 + N) / (1 + df)) + 1`.
    pub fn idf(&self, token: &str) -> f64 {
        let df = self.doc_freq.get(token).copied().unwrap_or(0);
        ((1.0 + self.doc_count as f64) / (1.0 + df as f64)).ln() + 1.0
    }

    /// Whether a token is a *key* (discriminating) token: its document
    /// frequency is at most `max_df_ratio` of the corpus, or it looks
    /// intrinsically specific (contains digits / long).
    pub fn is_key_token(&self, token: &str, max_df_ratio: f64) -> bool {
        if crate::tokenize::is_specific_token(token) {
            return true;
        }
        if self.doc_count == 0 {
            return false;
        }
        let df = self.doc_freq.get(token).copied().unwrap_or(0);
        (df as f64 / self.doc_count as f64) <= max_df_ratio
    }

    /// Cosine similarity of TF-IDF weighted token vectors.
    pub fn cosine_tfidf<S: AsRef<str>>(&self, a: &[S], b: &[S]) -> f64 {
        if a.is_empty() && b.is_empty() {
            return 1.0;
        }
        if a.is_empty() || b.is_empty() {
            return 0.0;
        }
        fn weigh<'a, S: AsRef<str>>(table: &IdfTable, xs: &'a [S]) -> BTreeMap<&'a str, f64> {
            let mut m: BTreeMap<&str, f64> = BTreeMap::new();
            for x in xs {
                *m.entry(x.as_ref()).or_insert(0.0) += 1.0;
            }
            for (t, w) in m.iter_mut() {
                *w *= table.idf(t);
            }
            m
        }
        let wa = weigh(self, a);
        let wb = weigh(self, b);
        let mut dot = 0.0;
        for (t, &x) in &wa {
            if let Some(&y) = wb.get(t) {
                dot += x * y;
            }
        }
        let na: f64 = wa.values().map(|w| w * w).sum::<f64>().sqrt();
        let nb: f64 = wb.values().map(|w| w * w).sum::<f64>().sqrt();
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            dot / (na * nb)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::tokens;

    #[test]
    fn jaccard_basic() {
        let a = tokens("efficient processing of spatial joins");
        let b = tokens("efficient processing of joins");
        let j = jaccard(&a, &b);
        assert!((j - 4.0 / 5.0).abs() < 1e-12);
        assert!((jaccard::<&str>(&[], &[]) - 1.0).abs() < 1e-12);
        assert_eq!(jaccard(&["a".to_string()], &["b".to_string()]), 0.0);
    }

    #[test]
    fn paper_example_entity_jaccard() {
        // Example 1 of the paper: author sets of sizes 4 and 3 sharing 3 entities.
        let s1 = crate::tokenize::entities("T Brinkhoff, H Kriegel, R Schneider, B Seeger");
        let s2 = crate::tokenize::entities("T Brinkhoff, H Kriegel, B Seeger");
        assert!((jaccard(&s1, &s2) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn dice_and_overlap() {
        let a = vec!["x".to_string(), "y".to_string()];
        let b = vec!["y".to_string(), "z".to_string()];
        assert!((dice(&a, &b) - 0.5).abs() < 1e-12);
        assert!((overlap(&a, &b) - 0.5).abs() < 1e-12);
        let sub = vec!["y".to_string()];
        assert!((overlap(&a, &sub) - 1.0).abs() < 1e-12);
        assert!((dice::<&str>(&[], &[]) - 1.0).abs() < 1e-12);
        assert!((overlap::<&str>(&[], &[]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_tf_identical_and_disjoint() {
        let a = tokens("big data systems");
        assert!((cosine_tf(&a, &a) - 1.0).abs() < 1e-12);
        let b = tokens("tiny things");
        assert_eq!(cosine_tf(&a, &b), 0.0);
        assert_eq!(cosine_tf::<&str>(&[], &["x"]), 0.0);
    }

    #[test]
    fn monge_elkan_tolerates_typos() {
        let a = tokens("hans kriegel");
        let b = tokens("hans peter kriegel");
        assert!(monge_elkan(&a, &b) > 0.95);
        let c = tokens("michael stonebraker");
        assert!(monge_elkan_sym(&a, &c) < 0.7);
        assert!((monge_elkan_sym::<&str>(&[], &[]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn monge_elkan_symmetric_version_is_symmetric() {
        let a = tokens("the quick brown fox");
        let b = tokens("quick fox");
        assert!((monge_elkan_sym(&a, &b) - monge_elkan_sym(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn idf_table_marks_rare_tokens_as_key() {
        let mut idf = IdfTable::new();
        for _ in 0..50 {
            idf.add_document(&tokens("apple ipod nano silver"));
        }
        idf.add_document(&tokens("apple ipod shuffle 512mb"));
        assert_eq!(idf.documents(), 51);
        // "apple" occurs everywhere -> not a key token; "shuffle" is rare -> key.
        assert!(!idf.is_key_token("apple", 0.2));
        assert!(idf.is_key_token("shuffle", 0.2));
        // Digits are always specific.
        assert!(idf.is_key_token("512mb", 0.2));
        assert!(idf.idf("shuffle") > idf.idf("apple"));
    }

    #[test]
    fn tfidf_cosine_downweights_common_tokens() {
        let mut idf = IdfTable::new();
        idf.add_document(&tokens("sony vaio laptop"));
        idf.add_document(&tokens("sony bravia tv"));
        idf.add_document(&tokens("sony walkman player"));
        let a = tokens("sony vaio");
        let b = tokens("sony walkman");
        let c = tokens("sony vaio laptop");
        // Sharing only the ubiquitous "sony" scores lower than sharing "vaio".
        assert!(idf.cosine_tfidf(&a, &c) > idf.cosine_tfidf(&a, &b));
        assert!((idf.cosine_tfidf(&a, &a) - 1.0).abs() < 1e-9);
    }
}
