#!/usr/bin/env bash
# Full reproduction tier: the complete test suite, every figure/table binary at
# the default experiment scale, and the Criterion component/figure benches.
# Expect this to run for a while (tens of minutes at the default scale); the
# quick smoke tier is scripts/kick-tires.sh.
set -euo pipefail

cd "$(dirname "$0")/.."

# The binaries default to scale 0.05; raise FULL_SCALE toward 1.0 to approach
# the paper's dataset sizes (runtime grows roughly quadratically in scale).
SCALE="${FULL_SCALE:-0.05}"
OUT=out/full
BINARIES=(table2 fig9 fig10 fig11 fig12 fig13 fig14 ablation serve_bench train_bench)

export SERVE_BENCH_JSON="$OUT/serve_bench.json"
export TRAIN_BENCH_JSON="$OUT/train_bench.json"
export FIG13_JSON="$OUT/fig13.json"
export SERVE_BENCH_METRICS_SNAPSHOT="$OUT/metrics-snapshot.prom"
# The full tier drives the HTTP front-end (socket replay + mid-replay
# hot-reload + backpressure smoke inside serve_bench) with a longer stream,
# and the multi-process gateway phase (real er-serve children behind
# er-gateway) with a longer replay per scaling entry.
export SERVE_BENCH_FRONTEND_REQUESTS="${FULL_FRONTEND_REQUESTS:-8000}"
export SERVE_BENCH_GATEWAY_REQUESTS="${FULL_GATEWAY_REQUESTS:-4000}"

echo "== full: release build =="
cargo build --release --workspace

echo "== full: workspace tests =="
cargo test -q --workspace --release

rm -rf "$OUT"
mkdir -p "$OUT"

echo "== full: running ${#BINARIES[@]} binaries at scale $SCALE =="
for bin in "${BINARIES[@]}"; do
    echo "-- $bin"
    ./target/release/"$bin" "$SCALE" | tee "$OUT/$bin.txt"
done

echo "== full: component and figure benches =="
cargo bench --workspace | tee "$OUT/bench.txt"

echo "== full: outputs =="
ls -l "$OUT"
echo "full reproduction OK"
