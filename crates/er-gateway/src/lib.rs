//! `er-gateway`: a consistent-hash scoring router in front of a fleet of
//! `er-serve` backends.
//!
//! One gateway process owns the client-facing listener and fans `/score`
//! traffic out across N backend processes:
//!
//! ```text
//!                         ┌──────────────┐
//!   clients ──────────────▶  er-gateway  │── hash(pair_id) ──▶ er-serve #0
//!             keep-alive  │  ring+canary │── (hedge) ────────▶ er-serve #1
//!                         └──────────────┘── /healthz probes ▶ er-serve #2
//! ```
//!
//! * **[`ring`]** — consistent-hash placement: vnode ring over backend
//!   indices, eligibility-filtered clockwise walk, and the independent
//!   percent-slot hash the canary split uses.
//! * **[`upstream`]** — all backend I/O on one readiness-loop driver
//!   thread (reusing [`er_serve::readiness`]); callers block on per-request
//!   [`upstream::ResponseSlot`]s, hedge losers get cancelled.
//! * **[`health`]** — periodic `/healthz` probes, consecutive-failure
//!   ejection, artifact-digest scraping.
//! * **[`canary`]** — the staged-promotion state machine: shadow scoring,
//!   rung ladder, automatic rollback on score divergence.
//! * **[`server`]** — ties it together: downstream HTTP (with the same
//!   RFC 7230 conformance rules as the backend parser), `/score` routing
//!   and hedging, and the `/reload` + `/canary/*` control plane.
//!
//! Scores relay **bit-exactly**: the winning backend's response body is
//! forwarded byte-for-byte, never re-serialized, so a client scoring
//! through the gateway sees the identical JSON it would get from the
//! backend directly.

#![warn(missing_docs)]

pub mod canary;
pub mod health;
pub mod ring;
pub mod server;
pub mod upstream;

pub use canary::{Action, CanaryConfig, CanaryController, CanaryStatus, Phase, RoutePlan};
pub use health::{BackendHealth, HealthState};
pub use ring::{percent_slot, splitmix64, HashRing, PERCENT_SLOTS};
pub use server::{GatewayConfig, GatewayServer, GatewayStats};
pub use upstream::{ResponseSlot, UpstreamPool, UpstreamResponse};
