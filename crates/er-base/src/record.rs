//! Records, schemas and attribute values.
//!
//! An entity-resolution workload operates over *records* drawn from one or two
//! tables.  Each record is a vector of attribute values that conforms to a
//! [`Schema`].  The paper's risk features are built from comparisons between
//! attribute values, so attribute *types* (entity name, entity set, text
//! description, numeric, categorical) matter: they determine which similarity
//! and difference metrics are applicable (Figure 5 of the paper).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Identifier of a record inside a [`crate::table::Table`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RecordId(pub u32);

impl fmt::Display for RecordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// The semantic type of an attribute.
///
/// The type drives the set of basic metrics generated for the attribute
/// (Section 5.1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttrType {
    /// A single entity name, e.g. a venue, a person name, a product brand.
    /// Supports abbreviation-aware difference metrics.
    EntityName,
    /// A set of entity names with a splitter (e.g. an author list).
    /// Supports `diff-cardinality` and `distinct-entity`.
    EntitySet,
    /// Free text consisting of one or more tokens (titles, descriptions).
    /// Supports `diff-key-token`.
    Text,
    /// A numeric value (year, price, duration).
    Numeric,
    /// A small closed vocabulary (genre, category, gender).
    Categorical,
}

impl AttrType {
    /// Human readable name used when rendering rules.
    pub fn name(self) -> &'static str {
        match self {
            AttrType::EntityName => "entity-name",
            AttrType::EntitySet => "entity-set",
            AttrType::Text => "text",
            AttrType::Numeric => "numeric",
            AttrType::Categorical => "categorical",
        }
    }

    /// Whether the attribute holds string content.
    pub fn is_string(self) -> bool {
        !matches!(self, AttrType::Numeric)
    }
}

/// A single attribute value of a record.
///
/// Values may be missing (`Null`) — dirtiness and incompleteness are a core
/// motivation of the paper, so missing values are first-class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AttrValue {
    /// Missing / unknown value.
    Null,
    /// A string value (entity name, entity set rendered with its splitter, text).
    Str(String),
    /// A numeric value.
    Num(f64),
}

impl AttrValue {
    /// Returns `true` when the value is missing.
    pub fn is_null(&self) -> bool {
        matches!(self, AttrValue::Null)
    }

    /// Returns the string content if present.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AttrValue::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Returns the numeric content if present.
    ///
    /// Strings that parse as numbers are *not* coerced; generators are
    /// responsible for producing properly typed values.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            AttrValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String value or empty string for `Null`/numeric values.
    pub fn str_or_empty(&self) -> &str {
        self.as_str().unwrap_or("")
    }
}

impl From<&str> for AttrValue {
    fn from(s: &str) -> Self {
        AttrValue::Str(s.to_owned())
    }
}

impl From<String> for AttrValue {
    fn from(s: String) -> Self {
        AttrValue::Str(s)
    }
}

impl From<f64> for AttrValue {
    fn from(n: f64) -> Self {
        AttrValue::Num(n)
    }
}

impl From<i64> for AttrValue {
    fn from(n: i64) -> Self {
        AttrValue::Num(n as f64)
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Null => write!(f, "∅"),
            AttrValue::Str(s) => write!(f, "{s}"),
            AttrValue::Num(n) => write!(f, "{n}"),
        }
    }
}

/// Description of one attribute of a schema.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AttrDef {
    /// Attribute name (e.g. `"title"`).
    pub name: String,
    /// Semantic type of the attribute.
    pub ty: AttrType,
}

impl AttrDef {
    /// Creates a new attribute definition.
    pub fn new(name: impl Into<String>, ty: AttrType) -> Self {
        Self { name: name.into(), ty }
    }
}

/// An ordered list of attribute definitions shared by all records of a table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    attrs: Vec<AttrDef>,
}

impl Schema {
    /// Builds a schema from attribute definitions.
    pub fn new(attrs: Vec<AttrDef>) -> Self {
        Self { attrs }
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// Whether the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Attribute definitions in order.
    pub fn attrs(&self) -> &[AttrDef] {
        &self.attrs
    }

    /// Definition of attribute `idx`.
    pub fn attr(&self, idx: usize) -> &AttrDef {
        &self.attrs[idx]
    }

    /// Index of the attribute with the given name, if any.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a.name == name)
    }

    /// Iterator over `(index, definition)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &AttrDef)> {
        self.attrs.iter().enumerate()
    }
}

/// A record: an id plus one value per schema attribute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Record {
    /// Identifier of the record within its table.
    pub id: RecordId,
    /// Values aligned with the table's [`Schema`].
    pub values: Vec<AttrValue>,
}

impl Record {
    /// Creates a record.
    pub fn new(id: RecordId, values: Vec<AttrValue>) -> Self {
        Self { id, values }
    }

    /// Value at attribute `idx`.
    pub fn value(&self, idx: usize) -> &AttrValue {
        &self.values[idx]
    }

    /// Number of missing values.
    pub fn null_count(&self) -> usize {
        self.values.iter().filter(|v| v.is_null()).count()
    }
}

/// A cheaply clonable handle to a record together with its schema.
///
/// Most of the pipeline passes records around read-only; `Arc` keeps the
/// workload memory footprint flat even when the same record participates in
/// many candidate pairs.
pub type SharedRecord = Arc<Record>;

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_schema() -> Schema {
        Schema::new(vec![
            AttrDef::new("title", AttrType::Text),
            AttrDef::new("authors", AttrType::EntitySet),
            AttrDef::new("venue", AttrType::EntityName),
            AttrDef::new("year", AttrType::Numeric),
        ])
    }

    #[test]
    fn schema_lookup_by_name() {
        let s = paper_schema();
        assert_eq!(s.len(), 4);
        assert_eq!(s.index_of("authors"), Some(1));
        assert_eq!(s.index_of("year"), Some(3));
        assert_eq!(s.index_of("missing"), None);
        assert_eq!(s.attr(0).ty, AttrType::Text);
    }

    #[test]
    fn attr_value_accessors() {
        let v = AttrValue::from("VLDB");
        assert_eq!(v.as_str(), Some("VLDB"));
        assert_eq!(v.as_num(), None);
        assert!(!v.is_null());

        let n = AttrValue::from(1999_i64);
        assert_eq!(n.as_num(), Some(1999.0));
        assert_eq!(n.as_str(), None);

        let null = AttrValue::Null;
        assert!(null.is_null());
        assert_eq!(null.str_or_empty(), "");
    }

    #[test]
    fn record_null_count() {
        let r = Record::new(
            RecordId(7),
            vec![
                AttrValue::from("a title"),
                AttrValue::Null,
                AttrValue::Null,
                AttrValue::from(2001_i64),
            ],
        );
        assert_eq!(r.null_count(), 2);
        assert_eq!(r.value(0).as_str(), Some("a title"));
    }

    #[test]
    fn attr_type_properties() {
        assert!(AttrType::Text.is_string());
        assert!(AttrType::EntityName.is_string());
        assert!(!AttrType::Numeric.is_string());
        assert_eq!(AttrType::EntitySet.name(), "entity-set");
    }

    #[test]
    fn display_impls() {
        assert_eq!(RecordId(3).to_string(), "r3");
        assert_eq!(AttrValue::from("x").to_string(), "x");
        assert_eq!(AttrValue::Null.to_string(), "∅");
        assert_eq!(AttrValue::from(5.0).to_string(), "5");
    }
}
