//! ER workloads: sets of candidate pairs with ground truth and splits.

use crate::pair::{Decision, Label, LabeledPair, Pair, PairId};
use crate::record::Schema;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A workload `D` of candidate record pairs (Table 1 of the paper).
///
/// The workload owns the pairs; splitting produces index lists so that the
/// same underlying pair storage backs the classifier-training, validation
/// (risk-training) and test partitions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Workload {
    /// Name used in reports (e.g. `"DS"`).
    pub name: String,
    /// Schema of the left table.
    pub left_schema: Arc<Schema>,
    /// Schema of the right table (identical to left for dedup workloads).
    pub right_schema: Arc<Schema>,
    pairs: Vec<Pair>,
}

impl Workload {
    /// Creates a workload from pairs.
    pub fn new(name: impl Into<String>, left_schema: Arc<Schema>, right_schema: Arc<Schema>, pairs: Vec<Pair>) -> Self {
        Self {
            name: name.into(),
            left_schema,
            right_schema,
            pairs,
        }
    }

    /// Number of candidate pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the workload has no pairs.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// All pairs.
    pub fn pairs(&self) -> &[Pair] {
        &self.pairs
    }

    /// Pair by id.
    pub fn pair(&self, id: PairId) -> &Pair {
        &self.pairs[id.0 as usize]
    }

    /// Number of equivalent (matching) pairs — the `# Matches` column of Table 2.
    pub fn match_count(&self) -> usize {
        self.pairs.iter().filter(|p| p.truth.is_match()).count()
    }

    /// Fraction of equivalent pairs.
    pub fn match_rate(&self) -> f64 {
        if self.pairs.is_empty() {
            0.0
        } else {
            self.match_count() as f64 / self.pairs.len() as f64
        }
    }

    /// Number of attributes of the left schema (the `# Attributes` column of Table 2).
    pub fn attribute_count(&self) -> usize {
        self.left_schema.len()
    }

    /// Splits the workload into train / validation / test partitions using the
    /// ratio convention of the paper (e.g. `3:2:5`).
    ///
    /// The split is a random permutation under `rng`, stratified nothing —
    /// matching the paper's plain random splits — but deterministic for a
    /// given RNG seed.
    pub fn split_by_ratio<R: Rng + ?Sized>(&self, ratio: SplitRatio, rng: &mut R) -> WorkloadSplit {
        let mut indices: Vec<u32> = (0..self.pairs.len() as u32).collect();
        indices.shuffle(rng);
        let n = indices.len();
        let n_train = ((ratio.train as usize) * n) / ratio.total();
        let n_valid = ((ratio.valid as usize) * n) / ratio.total();
        let train = indices[..n_train].iter().map(|&i| PairId(i)).collect();
        let valid = indices[n_train..n_train + n_valid].iter().map(|&i| PairId(i)).collect();
        let test = indices[n_train + n_valid..].iter().map(|&i| PairId(i)).collect();
        WorkloadSplit { train, valid, test }
    }

    /// Returns the pairs referenced by ids.
    pub fn select(&self, ids: &[PairId]) -> Vec<Pair> {
        ids.iter().map(|id| self.pair(*id).clone()).collect()
    }

    /// Randomly samples `k` pair ids without replacement.
    pub fn sample_ids<R: Rng + ?Sized>(&self, k: usize, rng: &mut R) -> Vec<PairId> {
        let mut indices: Vec<u32> = (0..self.pairs.len() as u32).collect();
        indices.shuffle(rng);
        indices.truncate(k.min(self.pairs.len()));
        indices.into_iter().map(PairId).collect()
    }
}

/// A `train:valid:test` ratio such as the paper's `1:2:7`, `2:2:6`, `3:2:5`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SplitRatio {
    /// Parts assigned to classifier training data.
    pub train: u32,
    /// Parts assigned to validation data (risk-model training data).
    pub valid: u32,
    /// Parts assigned to test data.
    pub test: u32,
}

impl SplitRatio {
    /// Creates a ratio.
    pub const fn new(train: u32, valid: u32, test: u32) -> Self {
        Self { train, valid, test }
    }

    /// Sum of the parts.
    pub fn total(&self) -> usize {
        (self.train + self.valid + self.test) as usize
    }

    /// Renders the ratio as in the paper, e.g. `"3:2:5"`.
    pub fn label(&self) -> String {
        format!("{}:{}:{}", self.train, self.valid, self.test)
    }

    /// The three ratios evaluated in Figure 9 of the paper.
    pub fn paper_ratios() -> [SplitRatio; 3] {
        [
            SplitRatio::new(1, 2, 7),
            SplitRatio::new(2, 2, 6),
            SplitRatio::new(3, 2, 5),
        ]
    }
}

/// Index lists describing a train / validation / test partition of a workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadSplit {
    /// Classifier-training pair ids.
    pub train: Vec<PairId>,
    /// Validation pair ids, used as risk-model training data.
    pub valid: Vec<PairId>,
    /// Test pair ids, the target of risk analysis.
    pub test: Vec<PairId>,
}

impl WorkloadSplit {
    /// Total number of pairs covered by the split.
    pub fn len(&self) -> usize {
        self.train.len() + self.valid.len() + self.test.len()
    }

    /// Whether the split covers no pairs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A workload labeled by a classifier: the result set that risk analysis ranks.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LabeledWorkload {
    /// Name of the underlying workload plus the classifier tag.
    pub name: String,
    /// The labeled pairs.
    pub pairs: Vec<LabeledPair>,
}

impl LabeledWorkload {
    /// Creates a labeled workload.
    pub fn new(name: impl Into<String>, pairs: Vec<LabeledPair>) -> Self {
        Self {
            name: name.into(),
            pairs,
        }
    }

    /// Builds a labeled workload by zipping pairs with classifier probabilities.
    ///
    /// # Panics
    /// Panics when the number of probabilities differs from the number of pairs.
    pub fn from_probabilities(name: impl Into<String>, pairs: Vec<Pair>, probs: &[f64]) -> Self {
        assert_eq!(pairs.len(), probs.len(), "one probability per pair required");
        let labeled = pairs
            .into_iter()
            .zip(probs.iter())
            .map(|(p, &prob)| LabeledPair::new(p, Decision::from_probability(prob)))
            .collect();
        Self::new(name, labeled)
    }

    /// Number of labeled pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether there are no labeled pairs.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Number of pairs mislabeled by the classifier (risk positives).
    pub fn mislabeled_count(&self) -> usize {
        self.pairs.iter().filter(|p| p.is_mislabeled()).count()
    }

    /// Classifier accuracy on this workload.
    pub fn classifier_accuracy(&self) -> f64 {
        if self.pairs.is_empty() {
            return 0.0;
        }
        1.0 - self.mislabeled_count() as f64 / self.pairs.len() as f64
    }

    /// Classifier F1 on the equivalent class, the metric reported in Figure 14.
    pub fn classifier_f1(&self) -> f64 {
        let mut tp = 0usize;
        let mut fp = 0usize;
        let mut fn_ = 0usize;
        for p in &self.pairs {
            let pred = p.decision.predicted.is_match();
            let truth = p.pair.truth.is_match();
            match (pred, truth) {
                (true, true) => tp += 1,
                (true, false) => fp += 1,
                (false, true) => fn_ += 1,
                (false, false) => {}
            }
        }
        if tp == 0 {
            return 0.0;
        }
        let precision = tp as f64 / (tp + fp) as f64;
        let recall = tp as f64 / (tp + fn_) as f64;
        2.0 * precision * recall / (precision + recall)
    }

    /// Risk labels (1 = mislabeled) aligned with `pairs`.
    pub fn risk_labels(&self) -> Vec<u8> {
        self.pairs.iter().map(|p| p.risk_label()).collect()
    }

    /// The ground-truth labels of the pairs.
    pub fn truths(&self) -> Vec<Label> {
        self.pairs.iter().map(|p| p.pair.truth).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{AttrDef, AttrType, AttrValue, Record, RecordId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_workload(n: usize) -> Workload {
        let schema = Arc::new(Schema::new(vec![AttrDef::new("name", AttrType::Text)]));
        let pairs = (0..n)
            .map(|i| {
                let l = Arc::new(Record::new(RecordId(i as u32), vec![AttrValue::from("a")]));
                let r = Arc::new(Record::new(RecordId(i as u32), vec![AttrValue::from("b")]));
                Pair::new(PairId(i as u32), l, r, Label::from_bool(i % 4 == 0))
            })
            .collect();
        Workload::new("tiny", Arc::clone(&schema), schema, pairs)
    }

    #[test]
    fn split_ratio_partitions_everything() {
        let w = tiny_workload(100);
        let mut rng = StdRng::seed_from_u64(7);
        let split = w.split_by_ratio(SplitRatio::new(3, 2, 5), &mut rng);
        assert_eq!(split.train.len(), 30);
        assert_eq!(split.valid.len(), 20);
        assert_eq!(split.test.len(), 50);
        assert_eq!(split.len(), 100);

        // No overlap between the three partitions.
        let mut all: Vec<u32> = split
            .train
            .iter()
            .chain(split.valid.iter())
            .chain(split.test.iter())
            .map(|p| p.0)
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 100);
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        let w = tiny_workload(50);
        let a = w.split_by_ratio(SplitRatio::new(1, 2, 7), &mut StdRng::seed_from_u64(3));
        let b = w.split_by_ratio(SplitRatio::new(1, 2, 7), &mut StdRng::seed_from_u64(3));
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
    }

    #[test]
    fn match_statistics() {
        let w = tiny_workload(8);
        assert_eq!(w.match_count(), 2);
        assert!((w.match_rate() - 0.25).abs() < 1e-12);
        assert_eq!(w.attribute_count(), 1);
    }

    #[test]
    fn labeled_workload_statistics() {
        let w = tiny_workload(4);
        // Probabilities chosen so pairs 0 (match) predicted unmatch => mislabeled,
        // pair 1 (unmatch) predicted unmatch => correct, etc.
        let probs = [0.2, 0.3, 0.9, 0.1];
        let lw = LabeledWorkload::from_probabilities("tiny", w.pairs().to_vec(), &probs);
        assert_eq!(lw.len(), 4);
        assert_eq!(lw.mislabeled_count(), 2); // pair 0 (fn) and pair 2 (fp)
        assert!((lw.classifier_accuracy() - 0.5).abs() < 1e-12);
        assert_eq!(lw.risk_labels(), vec![1, 0, 1, 0]);
    }

    #[test]
    fn f1_of_perfect_classifier_is_one() {
        let w = tiny_workload(8);
        let probs: Vec<f64> = w.pairs().iter().map(|p| p.truth.as_f64() * 0.98 + 0.01).collect();
        let lw = LabeledWorkload::from_probabilities("tiny", w.pairs().to_vec(), &probs);
        assert!((lw.classifier_f1() - 1.0).abs() < 1e-12);
        assert_eq!(lw.mislabeled_count(), 0);
    }

    #[test]
    fn ratio_labels() {
        assert_eq!(SplitRatio::new(1, 2, 7).label(), "1:2:7");
        assert_eq!(SplitRatio::paper_ratios()[2], SplitRatio::new(3, 2, 5));
        assert_eq!(SplitRatio::new(2, 2, 6).total(), 10);
    }

    #[test]
    fn sample_ids_bounded() {
        let w = tiny_workload(10);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(w.sample_ids(3, &mut rng).len(), 3);
        assert_eq!(w.sample_ids(99, &mut rng).len(), 10);
    }
}
