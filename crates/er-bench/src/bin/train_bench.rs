//! `train_bench` — factorized vs per-pair risk-training benchmark.
//!
//! Builds a DS-style risk-training workload (rules generated from the data, a
//! synthetic ~80%-accurate classifier so mislabeled pairs exist to rank),
//! then times one optimization epoch two ways across input sizes:
//!
//! * **baseline** — the per-pair reference `loss_and_gradient`, which
//!   evaluates the model four times per ranking pair (the pre-factorization
//!   hot path);
//! * **factorized** — `EpochScratch::factorized_loss_and_gradient`, one
//!   forward + one gradient evaluation per input, at each `--threads` count.
//!
//! Every timed pair is also cross-checked: the factorized gradient must match
//! the baseline within 1e-9 or the benchmark aborts.  Results are printed as
//! a table and written as machine-readable JSON (default
//! `out/train_bench.json`, override with `TRAIN_BENCH_JSON`; rank-pair budget
//! via `TRAIN_BENCH_PAIRS`, timing repetitions via `TRAIN_BENCH_REPS`),
//! extending the `serve_bench.json` perf trajectory to the training path.
//!
//! Usage: `cargo run -p er-bench --release --bin train_bench [scale] [--threads 1,2,4]`

use learnrisk_core::{loss_and_gradient, sample_rank_pairs, EpochScratch, EpochSpan, RiskTrainConfig};
use serde::Serialize;
use std::path::PathBuf;
use std::time::Instant;

/// One factorized-epoch timing at a thread count, with the epoch's
/// per-stage span attribution (forward / λ sweep / gradient), so the
/// trajectory shows *where* epoch time goes, not just its total.
#[derive(Debug, Serialize)]
struct ThreadTiming {
    threads: usize,
    epoch_secs: f64,
    /// Per-pair baseline epoch time divided by this epoch time.
    speedup_vs_baseline: f64,
    /// Seconds of the timed epoch spent in the parallel forward pass.
    forward_secs: f64,
    /// Seconds in the O(rank_pairs) scalar λ sweep.
    lambda_secs: f64,
    /// Seconds in the parallel gradient accumulation.
    gradient_secs: f64,
}

/// Timings of one input size.
#[derive(Debug, Serialize)]
struct TrainBenchPoint {
    inputs: usize,
    rank_pairs: usize,
    baseline_epoch_secs: f64,
    /// Factorized single-thread speedup over the per-pair baseline — the
    /// algorithmic win, independent of core count.
    single_thread_speedup: f64,
    /// Largest |factorized − baseline| over all gradient components.
    max_abs_gradient_diff: f64,
    factorized: Vec<ThreadTiming>,
}

/// Machine-readable result of one `train_bench` invocation (the
/// `BENCH_*.json` perf-trajectory format, alongside `serve_bench.json`).
#[derive(Debug, Serialize)]
struct TrainBenchSummary {
    scale: f64,
    seed: u64,
    /// CPUs available to the benchmarking process — lets perf-trajectory
    /// consumers tell single-CPU container runs apart from real multicore
    /// results.
    available_parallelism: usize,
    rule_count: usize,
    max_rank_pairs: usize,
    timing_reps: usize,
    /// SoA-vs-AoS portfolio-aggregation timing over this workload's risk
    /// inputs — the layout win of the trainer's per-input hot path.
    aggregation: er_bench::AggregationBench,
    points: Vec<TrainBenchPoint>,
}

/// Best-of-`reps` wall-clock seconds of `f`.
fn time_best<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let args = er_bench::parse_args(0.02);
    let max_rank_pairs = er_bench::env_usize("TRAIN_BENCH_PAIRS", 8_000);
    let reps = er_bench::env_usize("TRAIN_BENCH_REPS", 5);
    let json_path = PathBuf::from(std::env::var("TRAIN_BENCH_JSON").unwrap_or_else(|_| "out/train_bench.json".into()));

    // --- workload ----------------------------------------------------------
    println!(
        "train_bench: DS at scale {} (threads {:?}, {max_rank_pairs} rank pairs, best of {reps})",
        args.config.scale, args.threads
    );
    let workload = er_bench::train_workload(&args.config, 0.8);
    let (model, inputs) = (&workload.model, &workload.inputs);
    let rule_count = workload.rule_count();
    println!(
        "train_bench: {} rules, {} risk-training inputs ({} mislabeled)",
        rule_count,
        inputs.len(),
        workload.mislabeled
    );

    // SoA-vs-AoS aggregation micro-benchmark over the same portfolios the
    // epoch passes aggregate (bit-identity is asserted before timing).
    let aggregation = er_bench::aggregation_bench(model, inputs, reps);
    println!(
        "train_bench: SoA aggregation speedup {:.2}x over AoS ({} portfolios, {:.1} components each)",
        aggregation.soa_speedup, aggregation.portfolios, aggregation.mean_components
    );

    // Input-size ladder, clipped to the available inputs (rank_pairs ≫ inputs
    // is the regime the factorization targets).
    let mut sizes: Vec<usize> = [250usize, 500, 1000, 2000, 4000]
        .into_iter()
        .filter(|&s| s < inputs.len())
        .collect();
    sizes.push(inputs.len());

    // Thread ladder: always measure 1 thread (the speedup base), then each
    // distinct requested count once, in request order.
    let mut thread_counts = vec![1usize];
    for &t in &args.threads {
        if t > 1 && !thread_counts.contains(&t) {
            thread_counts.push(t);
        }
    }

    let config = RiskTrainConfig {
        max_rank_pairs,
        ..Default::default()
    };
    let mut scratch = EpochScratch::new();
    let mut grad = vec![0.0; model.param_count()];
    let mut points = Vec::new();

    println!();
    println!(
        "{:>8} {:>10} {:>14} {:>14} {:>10} {:>12}",
        "Inputs", "Pairs", "Baseline (ms)", "Factor. (ms)", "Threads", "Speedup"
    );
    for &n in &sizes {
        let prefix = &inputs[..n];
        let mut rng = er_base::rng::substream(args.config.seed, 0xBE ^ n as u64);
        let rank_pairs = sample_rank_pairs(prefix, max_rank_pairs, &mut rng);
        if rank_pairs.is_empty() {
            eprintln!("warning: no rank pairs at {n} inputs; skipping");
            continue;
        }

        // Correctness gate: the factorized epoch must reproduce the per-pair
        // reference gradient before its timings mean anything.
        let (loss_ref, grad_ref) = loss_and_gradient(model, prefix, &rank_pairs, &config);
        let loss_fac = scratch.factorized_loss_and_gradient(model, prefix, &rank_pairs, &config, 1, &mut grad);
        let max_abs_gradient_diff = grad
            .iter()
            .zip(&grad_ref)
            .map(|(f, r)| (f - r).abs())
            .fold(0.0f64, f64::max);
        assert!(
            max_abs_gradient_diff < 1e-9 && (loss_fac - loss_ref).abs() < 1e-9,
            "factorized epoch diverged at {n} inputs: grad diff {max_abs_gradient_diff:.3e}, \
             loss {loss_fac} vs {loss_ref}"
        );

        let baseline_epoch_secs = time_best(reps, || {
            std::hint::black_box(loss_and_gradient(model, prefix, &rank_pairs, &config));
        });
        let mut factorized = Vec::new();
        for &threads in &thread_counts {
            // Best-of-reps per stage too: attribution comes from the same
            // timed-epoch runs the total is measured on, so the stage split
            // explains the reported epoch time rather than a separate run.
            let mut span = EpochSpan::default();
            let mut best_span = EpochSpan::default();
            let mut epoch_secs = f64::INFINITY;
            for _ in 0..reps.max(1) {
                let start = Instant::now();
                std::hint::black_box(scratch.factorized_loss_and_gradient_timed(
                    model,
                    prefix,
                    &rank_pairs,
                    &config,
                    threads,
                    &mut grad,
                    &mut span,
                ));
                let elapsed = start.elapsed().as_secs_f64();
                if elapsed < epoch_secs {
                    epoch_secs = elapsed;
                    best_span = span.clone();
                }
            }
            let speedup = baseline_epoch_secs / epoch_secs.max(1e-12);
            println!(
                "{:>8} {:>10} {:>14.3} {:>14.3} {:>10} {:>11.1}x  (fwd {:.0}% λ {:.0}% grad {:.0}%)",
                n,
                rank_pairs.len(),
                baseline_epoch_secs * 1e3,
                epoch_secs * 1e3,
                threads,
                speedup,
                100.0 * best_span.forward_secs / epoch_secs.max(1e-12),
                100.0 * best_span.lambda_secs / epoch_secs.max(1e-12),
                100.0 * best_span.gradient_secs / epoch_secs.max(1e-12),
            );
            factorized.push(ThreadTiming {
                threads,
                epoch_secs,
                speedup_vs_baseline: speedup,
                forward_secs: best_span.forward_secs,
                lambda_secs: best_span.lambda_secs,
                gradient_secs: best_span.gradient_secs,
            });
        }
        let single_thread_speedup = factorized
            .iter()
            .find(|t| t.threads == 1)
            .map_or(0.0, |t| t.speedup_vs_baseline);
        points.push(TrainBenchPoint {
            inputs: n,
            rank_pairs: rank_pairs.len(),
            baseline_epoch_secs,
            single_thread_speedup,
            max_abs_gradient_diff,
            factorized,
        });
    }

    // --- summary ----------------------------------------------------------
    let cores = er_bench::available_parallelism();
    if let Some(best) = points
        .iter()
        .max_by(|a, b| a.single_thread_speedup.total_cmp(&b.single_thread_speedup))
    {
        println!();
        println!(
            "train_bench: best single-thread factorization speedup {:.1}x at {} inputs × {} rank pairs",
            best.single_thread_speedup, best.inputs, best.rank_pairs
        );
    }
    if cores == 1 {
        println!(
            "train_bench: note — only 1 CPU is available to this process; \
             thread counts above 1 time-slice a single core and cannot show a further speedup here"
        );
    }

    let summary = TrainBenchSummary {
        scale: args.config.scale,
        seed: args.config.seed,
        available_parallelism: cores,
        rule_count,
        max_rank_pairs,
        timing_reps: reps,
        aggregation,
        points,
    };
    if let Some(parent) = json_path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
    }
    std::fs::write(&json_path, serde::json::to_string_pretty(&summary)).expect("write train_bench JSON");
    println!("train_bench: wrote {}", json_path.display());
}
