//! Record pairs, ground-truth labels and classifier decisions.

use crate::record::Record;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Identifier of a pair within a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PairId(pub u32);

impl fmt::Display for PairId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// Ground-truth equivalence status of a pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Label {
    /// The two records refer to the same real-world entity.
    Equivalent,
    /// The two records refer to different entities.
    Inequivalent,
}

impl Label {
    /// `true` for [`Label::Equivalent`].
    pub fn is_match(self) -> bool {
        matches!(self, Label::Equivalent)
    }

    /// Numeric encoding used by learners (1.0 = equivalent).
    pub fn as_f64(self) -> f64 {
        if self.is_match() {
            1.0
        } else {
            0.0
        }
    }

    /// Builds a label from a boolean match flag.
    pub fn from_bool(is_match: bool) -> Self {
        if is_match {
            Label::Equivalent
        } else {
            Label::Inequivalent
        }
    }
}

/// A classifier's decision on a pair: the label it emitted plus its raw
/// equivalence probability output.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Decision {
    /// Label emitted by the machine classifier (`matching` / `unmatching`).
    pub predicted: Label,
    /// The classifier's equivalence-probability output in `[0, 1]`.
    pub probability: f64,
}

impl Decision {
    /// Builds a decision from a probability using the conventional 0.5 threshold.
    pub fn from_probability(probability: f64) -> Self {
        let p = probability.clamp(0.0, 1.0);
        Decision {
            predicted: Label::from_bool(p >= 0.5),
            probability: p,
        }
    }

    /// Whether this decision disagrees with the ground truth, i.e. the pair is
    /// *mislabeled* — the positive class of risk analysis.
    pub fn is_mislabeled(&self, truth: Label) -> bool {
        self.predicted != truth
    }

    /// Ambiguity of the output: distance of the probability from the extremes,
    /// `0.5 - |p - 0.5|`, in `[0, 0.5]`.  Used by the `Baseline` risk method.
    pub fn ambiguity(&self) -> f64 {
        0.5 - (self.probability - 0.5).abs()
    }
}

/// A candidate pair: two records (possibly from different tables) plus the
/// ground-truth label.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Pair {
    /// Identifier within the workload.
    pub id: PairId,
    /// Record from the first (left) table.
    pub left: Arc<Record>,
    /// Record from the second (right) table.
    pub right: Arc<Record>,
    /// Ground-truth equivalence status.
    pub truth: Label,
}

impl Pair {
    /// Creates a pair.
    pub fn new(id: PairId, left: Arc<Record>, right: Arc<Record>, truth: Label) -> Self {
        Self { id, left, right, truth }
    }
}

/// A pair that has been labeled by a machine classifier, the unit of risk
/// analysis (Definition 1 of the paper).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LabeledPair {
    /// The underlying candidate pair with ground truth.
    pub pair: Pair,
    /// The classifier decision for the pair.
    pub decision: Decision,
}

impl LabeledPair {
    /// Creates a labeled pair.
    pub fn new(pair: Pair, decision: Decision) -> Self {
        Self { pair, decision }
    }

    /// Whether the classifier mislabeled the pair (risk-analysis positive).
    pub fn is_mislabeled(&self) -> bool {
        self.decision.is_mislabeled(self.pair.truth)
    }

    /// Risk label: 1 if mislabeled, 0 otherwise (ĝ in Eq. 14 of the paper).
    pub fn risk_label(&self) -> u8 {
        u8::from(self.is_mislabeled())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{AttrValue, RecordId};

    fn rec(id: u32) -> Arc<Record> {
        Arc::new(Record::new(RecordId(id), vec![AttrValue::from("x")]))
    }

    #[test]
    fn label_encoding() {
        assert!(Label::Equivalent.is_match());
        assert!(!Label::Inequivalent.is_match());
        assert_eq!(Label::Equivalent.as_f64(), 1.0);
        assert_eq!(Label::Inequivalent.as_f64(), 0.0);
        assert_eq!(Label::from_bool(true), Label::Equivalent);
        assert_eq!(Label::from_bool(false), Label::Inequivalent);
    }

    #[test]
    fn decision_thresholding_and_clamping() {
        assert_eq!(Decision::from_probability(0.9).predicted, Label::Equivalent);
        assert_eq!(Decision::from_probability(0.5).predicted, Label::Equivalent);
        assert_eq!(Decision::from_probability(0.49).predicted, Label::Inequivalent);
        assert_eq!(Decision::from_probability(1.7).probability, 1.0);
        assert_eq!(Decision::from_probability(-0.2).probability, 0.0);
    }

    #[test]
    fn ambiguity_peaks_at_half() {
        assert!((Decision::from_probability(0.5).ambiguity() - 0.5).abs() < 1e-12);
        assert!((Decision::from_probability(1.0).ambiguity() - 0.0).abs() < 1e-12);
        assert!((Decision::from_probability(0.25).ambiguity() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn mislabeled_detection() {
        let pair = Pair::new(PairId(0), rec(0), rec(1), Label::Equivalent);
        let wrong = LabeledPair::new(pair.clone(), Decision::from_probability(0.1));
        let right = LabeledPair::new(pair, Decision::from_probability(0.8));
        assert!(wrong.is_mislabeled());
        assert_eq!(wrong.risk_label(), 1);
        assert!(!right.is_mislabeled());
        assert_eq!(right.risk_label(), 0);
    }

    #[test]
    fn pair_display() {
        assert_eq!(PairId(11).to_string(), "d11");
    }
}
