//! Out-of-distribution risk analysis (the paper's Figure 10 scenario):
//! the classifier is trained on one benchmark (Abt-Buy) and deployed on
//! another (Amazon-Google).  Risk analysis must flag the pairs the stale
//! classifier gets wrong in the new environment.
//!
//! ```bash
//! cargo run --release --example ood_risk
//! ```

use learnrisk_repro::eval::{run_fig10_workload, ExperimentConfig, OodWorkload};

fn main() {
    let config = ExperimentConfig { scale: 0.03, seed: 42 };

    for workload in [OodWorkload::Da2Ds, OodWorkload::Ab2Ag] {
        let (source, target) = workload.datasets();
        println!(
            "=== {} — classifier trained on {}, risk-trained/tested on {} ===",
            workload.name(),
            source.short_name(),
            target.short_name()
        );
        let result = run_fig10_workload(workload, &config);
        println!(
            "classifier F1 under distribution shift: {:.3} ({} of {} test pairs mislabeled)",
            result.classifier_f1, result.test_mislabeled, result.test_size
        );
        println!("{:<14} {:>8}", "Method", "AUROC");
        for method in &result.methods {
            println!("{:<14} {:>8.3}", method.method, method.auroc);
        }
        let learn = result.auroc_of("LearnRisk").unwrap_or(0.5);
        let best_baseline = result
            .methods
            .iter()
            .filter(|m| m.method != "LearnRisk")
            .map(|m| m.auroc)
            .fold(0.0f64, f64::max);
        println!(
            "LearnRisk vs best non-learnable alternative: {:.3} vs {:.3}\n",
            learn, best_baseline
        );
    }
}
