//! Regenerates Figure 9 (comparative evaluation on DS/AB/AG/SG × 3 ratios).
use er_eval::{render_auroc_table, run_fig9};

fn main() {
    let config = er_bench::config_from_args(0.05);
    let results = run_fig9(&config);
    println!(
        "{}",
        render_auroc_table(
            &format!("Figure 9 — AUROC per risk method (scale {})", config.scale),
            &results
        )
    );
}
