//! # er-bench
//!
//! Benchmark harness of the reproduction: one binary per table/figure of the
//! paper (printing the same rows/series the paper reports), the `serve_bench`
//! traffic-replay benchmark of the online engine, and Criterion benches for
//! the performance-sensitive building blocks.
//!
//! Binaries (run with
//! `cargo run -p er-bench --release --bin <name> [scale] [--threads 1,2,4]`):
//!
//! | Binary       | Reproduces |
//! |--------------|------------|
//! | `table2`     | Table 2 — dataset statistics |
//! | `fig9`       | Figure 9 — comparative AUROC on DS/AB/AG/SG × 3 ratios |
//! | `fig10`      | Figure 10 — out-of-distribution evaluation (DA2DS, AB2AG) |
//! | `fig11`      | Figure 11 — LearnRisk vs HoloClean |
//! | `fig12`      | Figure 12 — sensitivity to risk-training data size |
//! | `fig13`      | Figure 13 — scalability (rule generation / risk training / engine scoring) |
//! | `fig14`      | Figure 14 — active learning |
//! | `ablation`   | Design-choice ablations called out in DESIGN.md |
//! | `serve_bench`| Zipf traffic replay against the `er-serve` engine |
//! | `train_bench`| Factorized vs per-pair risk-training epoch benchmark |
//!
//! All binaries share one argument parser ([`parse_args`]): an optional
//! positional workload scale plus `--threads a,b,c` for the binaries that
//! exercise a multi-threaded path (`fig13`, `serve_bench`, `train_bench`),
//! and the [`env_usize`] helper for their environment overrides.

#![warn(missing_docs)]

use er_eval::ExperimentConfig;

/// Parsed command-line arguments shared by every benchmark binary.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Workload scale and seed (the seed is fixed at 2020 for
    /// reproducibility).
    pub config: ExperimentConfig,
    /// Thread counts for the serving-path binaries, from `--threads`;
    /// defaults to [`default_thread_counts`].
    pub threads: Vec<usize>,
}

/// Parses the process arguments: `[scale] [--threads a,b,c]`.
///
/// Keeps the harness's warn-don't-die behavior: an unparsable scale or
/// thread list falls back to its default with a warning on stderr, so a typo
/// cannot silently run a long experiment at the wrong configuration.
pub fn parse_args(default_scale: f64) -> BenchArgs {
    parse_args_from(std::env::args().skip(1), default_scale)
}

/// [`parse_args`] over an explicit argument list (testable form).
pub fn parse_args_from(args: impl IntoIterator<Item = String>, default_scale: f64) -> BenchArgs {
    let mut scale = default_scale;
    let mut scale_seen = false;
    let mut threads = default_thread_counts();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        if let Some(list) = arg
            .strip_prefix("--threads=")
            .map(str::to_owned)
            .or_else(|| (arg == "--threads").then(|| iter.next().unwrap_or_default()))
        {
            match parse_thread_list(&list) {
                Some(parsed) => threads = parsed,
                None => {
                    eprintln!("warning: could not parse --threads value {list:?}; using default {threads:?}");
                }
            }
        } else if !scale_seen {
            scale_seen = true;
            match arg.trim().parse::<f64>() {
                Ok(parsed) => scale = parsed,
                Err(_) => {
                    eprintln!("warning: could not parse scale argument {arg:?}; using default {default_scale}");
                }
            }
        } else {
            eprintln!("warning: ignoring unrecognized argument {arg:?}");
        }
    }
    BenchArgs {
        config: ExperimentConfig { scale, seed: 2020 },
        threads,
    }
}

/// Backwards-compatible helper: parses only the workload scale from the
/// process arguments (see [`parse_args`]).
pub fn config_from_args(default_scale: f64) -> ExperimentConfig {
    parse_args(default_scale).config
}

/// Default thread counts for the serving-path binaries: powers of two up to
/// the machine's parallelism, always including at least 1 and 2 so the
/// single- vs multi-threaded comparison is always reported.
pub fn default_thread_counts() -> Vec<usize> {
    let max = std::thread::available_parallelism().map_or(2, |n| n.get());
    let mut counts = vec![1usize];
    let mut t = 2;
    while t <= max && counts.len() < 4 {
        counts.push(t);
        t *= 2;
    }
    if counts.len() == 1 {
        counts.push(2);
    }
    counts
}

/// CPUs available to this process (1 when undeterminable) — the value the
/// `*_bench` binaries embed in their JSON so perf-trajectory consumers can
/// tell single-CPU container runs apart from real multicore results.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Parses a `usize` environment variable, keeping the harness's
/// warn-don't-die behavior: unset uses the default silently, an unparsable
/// value warns on stderr and uses the default.  Shared by the `*_bench`
/// binaries' request/size overrides.
pub fn env_usize(name: &str, default: usize) -> usize {
    match std::env::var(name) {
        Err(_) => default,
        Ok(raw) => match raw.trim().parse() {
            Ok(v) => v,
            Err(_) => {
                eprintln!("warning: could not parse {name}={raw:?}; using default {default}");
                default
            }
        },
    }
}

/// A DS-style risk-training workload shared by `train_bench` and the
/// `train_epoch` Criterion bench: rules generated from the data, risk inputs
/// labeled by a synthetic classifier, so both time the identical setup.
pub struct TrainWorkload {
    /// Untrained model over the generated rule features.
    pub model: learnrisk_core::LearnRiskModel,
    /// Risk-training inputs for every workload pair.
    pub inputs: Vec<learnrisk_core::PairRiskInput>,
    /// Number of mislabeled pairs (risk positives) among the inputs.
    pub mislabeled: usize,
}

impl TrainWorkload {
    /// Number of generated rule features.
    pub fn rule_count(&self) -> usize {
        self.model.features.len()
    }
}

/// Builds a [`TrainWorkload`]: generates DS at `config.scale`, derives rules
/// and the risk feature set from the data, then labels every pair with a
/// synthetic classifier of the given `accuracy` (confidence 0.8 / 0.2) so
/// mislabeled pairs exist and the rank-pair list is non-trivial.
pub fn train_workload(config: &ExperimentConfig, accuracy: f64) -> TrainWorkload {
    let ds = er_datasets::generate_benchmark(er_datasets::BenchmarkId::DblpScholar, config.scale, config.seed);
    let workload = &ds.workload;
    let evaluator =
        er_similarity::MetricEvaluator::from_pairs(std::sync::Arc::clone(&workload.left_schema), workload.pairs());
    let rows = evaluator.eval_pairs(workload.pairs());
    let labels: Vec<er_base::Label> = workload.pairs().iter().map(|p| p.truth).collect();
    let rules = er_rulegen::generate_rules(&rows, &labels, er_rulegen::OneSidedTreeConfig::default());
    let feature_set =
        learnrisk_core::RiskFeatureSet::from_training(rules, evaluator.metrics().to_vec(), &rows, &labels);
    let model = learnrisk_core::LearnRiskModel::new(feature_set, Default::default());
    let mut prob_rng = er_base::rng::substream(config.seed, 0x7B);
    let probs = er_eval::synthetic_classifier_probs(&labels, accuracy, &mut prob_rng);
    let labeled = er_base::LabeledWorkload::from_probabilities("train-workload", workload.pairs().to_vec(), &probs);
    let inputs = er_eval::build_inputs_from_labeled(&evaluator, &model.features, &labeled);
    TrainWorkload {
        model,
        inputs,
        mislabeled: labeled.mislabeled_count(),
    }
}

fn parse_thread_list(list: &str) -> Option<Vec<usize>> {
    let parsed: Option<Vec<usize>> = list
        .split(',')
        .map(|part| part.trim().parse::<usize>().ok().filter(|&t| t > 0))
        .collect();
    parsed.filter(|v| !v.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> BenchArgs {
        parse_args_from(list.iter().map(|s| s.to_string()), 0.03)
    }

    #[test]
    fn default_scale_is_used_without_args() {
        let a = args(&[]);
        assert_eq!(a.config.scale, 0.03);
        assert_eq!(a.config.seed, 2020);
        assert!(a.threads.len() >= 2, "always at least two thread counts");
        assert_eq!(a.threads[0], 1);
    }

    #[test]
    fn positional_scale_is_parsed() {
        assert_eq!(args(&["0.1"]).config.scale, 0.1);
    }

    #[test]
    fn bad_scale_falls_back_with_default() {
        assert_eq!(args(&["zoom"]).config.scale, 0.03);
    }

    #[test]
    fn threads_flag_both_spellings() {
        assert_eq!(args(&["--threads", "1,2,8"]).threads, vec![1, 2, 8]);
        assert_eq!(args(&["--threads=4"]).threads, vec![4]);
        assert_eq!(args(&["0.2", "--threads", "2, 3"]).threads, vec![2, 3]);
    }

    #[test]
    fn bad_threads_fall_back_to_defaults() {
        let defaults = default_thread_counts();
        assert_eq!(args(&["--threads", "fast"]).threads, defaults);
        assert_eq!(args(&["--threads", "0"]).threads, defaults);
        assert_eq!(args(&["--threads", ""]).threads, defaults);
        assert_eq!(args(&["--threads"]).threads, defaults);
    }

    #[test]
    fn extra_positionals_are_ignored_not_fatal() {
        let a = args(&["0.5", "unexpected"]);
        assert_eq!(a.config.scale, 0.5);
    }
}
