//! Nonblocking upstream I/O: one driver thread owns every in-flight
//! backend request through the readiness loop (`er_serve::readiness`, the
//! same `Poller` the backend's front-end runs on).
//!
//! A submission opens a fresh connection (connect is blocking but
//! local-network fast; everything after is nonblocking), hands the socket
//! to the driver, and returns a [`ResponseSlot`] the caller parks on.
//! Hedging falls out of the shape for free: submit the same bytes twice and
//! wait on both slots — the first completion wins and the loser's slot is
//! [cancelled](ResponseSlot::cancel), which tells the driver to discard the
//! straggler's response instead of buffering it for nobody.
//!
//! The response parser applies the same RFC 7230 §3.3.3 framing rule as the
//! serve-side parser: conflicting repeated `Content-Length` headers poison
//! the response (`InvalidData`), they never pick a winner.

use er_serve::readiness::{Events, Interest, Poller, Token, Waker};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Token reserved for the driver's wake eventfd/pipe.
const WAKER: Token = Token(u64::MAX);
/// Largest response the driver will buffer from a backend.
const MAX_RESPONSE_BYTES: usize = 8 << 20;

/// One complete backend response, body kept as raw bytes so the gateway can
/// relay it downstream bit-exactly.
#[derive(Debug, Clone)]
pub struct UpstreamResponse {
    /// HTTP status code.
    pub status: u16,
    /// Lower-cased header names with trimmed values, in wire order.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes, exactly as the backend framed them.
    pub body: Vec<u8>,
}

impl UpstreamResponse {
    /// First value of a (lower-case) header name, if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }
}

enum SlotState {
    Pending,
    Done(io::Result<UpstreamResponse>),
    Taken,
}

/// Where a submission's response lands. One waiter takes the result; the
/// slot can be [cancelled](Self::cancel) to tell the driver nobody is
/// waiting anymore (the race loser in a hedged pair).
pub struct ResponseSlot {
    state: Mutex<SlotState>,
    cv: Condvar,
    cancelled: AtomicBool,
}

impl ResponseSlot {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(SlotState::Pending),
            cv: Condvar::new(),
            cancelled: AtomicBool::new(false),
        })
    }

    fn complete(&self, result: io::Result<UpstreamResponse>) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if matches!(*state, SlotState::Pending) {
            *state = SlotState::Done(result);
            self.cv.notify_all();
        }
    }

    /// Blocks until the response lands or `timeout` passes. `None` means
    /// still pending — the caller may keep waiting (or launch a hedge).
    /// The result is taken: a second call returns a `BrokenPipe` error.
    pub fn take_timeout(&self, timeout: Duration) -> Option<io::Result<UpstreamResponse>> {
        let deadline = Instant::now() + timeout;
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            match std::mem::replace(&mut *state, SlotState::Taken) {
                SlotState::Done(result) => return Some(result),
                SlotState::Taken => {
                    return Some(Err(io::Error::new(io::ErrorKind::BrokenPipe, "response already taken")))
                }
                SlotState::Pending => {
                    *state = SlotState::Pending;
                    let now = Instant::now();
                    if now >= deadline {
                        return None;
                    }
                    let (next, _) = self
                        .cv
                        .wait_timeout(state, deadline - now)
                        .unwrap_or_else(|e| e.into_inner());
                    state = next;
                }
            }
        }
    }

    /// Has a result landed (without taking it)?
    pub fn is_done(&self) -> bool {
        !matches!(
            *self.state.lock().unwrap_or_else(|e| e.into_inner()),
            SlotState::Pending
        )
    }

    /// Marks the slot as abandoned: the driver drops the in-flight request
    /// (and its connection) at the next opportunity instead of finishing a
    /// read nobody will consume.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }
}

struct Submission {
    stream: TcpStream,
    request: Vec<u8>,
    slot: Arc<ResponseSlot>,
    deadline: Instant,
}

enum Direction {
    Sending,
    Receiving,
}

struct InFlight {
    stream: TcpStream,
    request: Vec<u8>,
    written: usize,
    buffer: Vec<u8>,
    direction: Direction,
    slot: Arc<ResponseSlot>,
    deadline: Instant,
    interest: Interest,
}

/// The upstream driver: submissions go in, completed [`ResponseSlot`]s come
/// out, one readiness loop in between.
pub struct UpstreamPool {
    inject: Arc<Mutex<Vec<Submission>>>,
    waker: Arc<Waker>,
    shutdown: Arc<AtomicBool>,
    driver: Option<std::thread::JoinHandle<()>>,
    connect_timeout: Duration,
}

impl UpstreamPool {
    /// Starts the driver thread. `connect_timeout` bounds the one blocking
    /// step (TCP connect) of each submission.
    pub fn new(connect_timeout: Duration) -> io::Result<Self> {
        let poller = Poller::new()?;
        let waker = Arc::new(Waker::new(&poller, WAKER)?);
        let inject = Arc::new(Mutex::new(Vec::new()));
        let shutdown = Arc::new(AtomicBool::new(false));
        let driver = {
            let inject = Arc::clone(&inject);
            let waker = Arc::clone(&waker);
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name("gw-upstream".to_string())
                .spawn(move || drive(poller, waker, inject, shutdown))?
        };
        Ok(Self {
            inject,
            waker,
            shutdown,
            driver: Some(driver),
            connect_timeout,
        })
    }

    /// Sends `request` (full wire bytes, head + body) to `addr` on a fresh
    /// connection. Returns immediately with the slot the response will land
    /// in; connection failures land in the slot too, so callers have one
    /// wait path.
    pub fn submit(&self, addr: SocketAddr, request: Vec<u8>, timeout: Duration) -> Arc<ResponseSlot> {
        let slot = ResponseSlot::new();
        let stream = match TcpStream::connect_timeout(&addr, self.connect_timeout) {
            Ok(stream) => stream,
            Err(e) => {
                slot.complete(Err(e));
                return slot;
            }
        };
        if let Err(e) = stream.set_nonblocking(true) {
            slot.complete(Err(e));
            return slot;
        }
        let _ = stream.set_nodelay(true);
        self.inject.lock().unwrap_or_else(|e| e.into_inner()).push(Submission {
            stream,
            request,
            slot: Arc::clone(&slot),
            deadline: Instant::now() + timeout,
        });
        let _ = self.waker.wake();
        slot
    }
}

impl Drop for UpstreamPool {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = self.waker.wake();
        if let Some(handle) = self.driver.take() {
            let _ = handle.join();
        }
    }
}

/// The driver loop: registers injected submissions, pumps nonblocking
/// writes then reads, completes slots, expires deadlines.
fn drive(poller: Poller, waker: Arc<Waker>, inject: Arc<Mutex<Vec<Submission>>>, shutdown: Arc<AtomicBool>) {
    let mut events = Events::with_capacity(128);
    let mut flights: HashMap<u64, InFlight> = HashMap::new();
    let mut next_token: u64 = 0;
    loop {
        if shutdown.load(Ordering::SeqCst) {
            for (_, flight) in flights.drain() {
                flight
                    .slot
                    .complete(Err(io::Error::new(io::ErrorKind::Interrupted, "gateway shutting down")));
                let _ = poller.deregister(flight.stream.as_raw_fd());
            }
            return;
        }
        // Adopt new submissions: register for WRITABLE and try an eager
        // write — small requests usually fit the socket buffer in one shot.
        let submissions: Vec<Submission> = std::mem::take(&mut *inject.lock().unwrap_or_else(|e| e.into_inner()));
        for submission in submissions {
            let token = next_token;
            next_token = next_token.wrapping_add(1);
            let mut flight = InFlight {
                stream: submission.stream,
                request: submission.request,
                written: 0,
                buffer: Vec::with_capacity(1024),
                direction: Direction::Sending,
                slot: submission.slot,
                deadline: submission.deadline,
                interest: Interest::WRITABLE,
            };
            if poller
                .register(flight.stream.as_raw_fd(), Token(token), Interest::WRITABLE)
                .is_err()
            {
                flight
                    .slot
                    .complete(Err(io::Error::other("cannot register upstream socket")));
                continue;
            }
            if step(&poller, Token(token), &mut flight) {
                flights.insert(token, flight);
            } else {
                let _ = poller.deregister(flight.stream.as_raw_fd());
            }
        }
        // Deadline scan; also drops cancelled stragglers.
        let now = Instant::now();
        let mut closest: Option<Instant> = None;
        flights.retain(|_, flight| {
            if flight.slot.is_cancelled() {
                let _ = poller.deregister(flight.stream.as_raw_fd());
                return false;
            }
            if now >= flight.deadline {
                flight.slot.complete(Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "upstream deadline expired",
                )));
                let _ = poller.deregister(flight.stream.as_raw_fd());
                return false;
            }
            closest = Some(closest.map_or(flight.deadline, |c| c.min(flight.deadline)));
            true
        });
        let timeout = closest.map(|deadline| deadline.saturating_duration_since(Instant::now()));
        if poller.poll(&mut events, timeout).is_err() {
            continue;
        }
        let mut finished: Vec<u64> = Vec::new();
        for event in events.iter() {
            let Token(token) = event.token();
            if Token(token) == WAKER {
                waker.drain();
                continue;
            }
            let Some(flight) = flights.get_mut(&token) else {
                continue;
            };
            if !step(&poller, Token(token), flight) {
                finished.push(token);
            }
        }
        for token in finished {
            if let Some(flight) = flights.remove(&token) {
                let _ = poller.deregister(flight.stream.as_raw_fd());
            }
        }
    }
}

/// Pumps one in-flight request as far as the socket allows. Returns `false`
/// when the flight is finished (completed or failed) and should be dropped.
fn step(poller: &Poller, token: Token, flight: &mut InFlight) -> bool {
    if flight.slot.is_cancelled() {
        return false;
    }
    if matches!(flight.direction, Direction::Sending) {
        while flight.written < flight.request.len() {
            match flight.stream.write(&flight.request[flight.written..]) {
                Ok(0) => {
                    flight.slot.complete(Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "upstream closed during send",
                    )));
                    return false;
                }
                Ok(n) => flight.written += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    flight.slot.complete(Err(e));
                    return false;
                }
            }
        }
        flight.direction = Direction::Receiving;
        if flight.interest != Interest::READABLE {
            flight.interest = Interest::READABLE;
            let _ = poller.reregister(flight.stream.as_raw_fd(), token, Interest::READABLE);
        }
    }
    let mut chunk = [0u8; 4096];
    loop {
        match flight.stream.read(&mut chunk) {
            Ok(0) => {
                flight.slot.complete(Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "upstream closed before a full response",
                )));
                return false;
            }
            Ok(n) => {
                flight.buffer.extend_from_slice(&chunk[..n]);
                if flight.buffer.len() > MAX_RESPONSE_BYTES {
                    flight.slot.complete(Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "upstream response too large",
                    )));
                    return false;
                }
                match try_parse_response(&flight.buffer) {
                    Ok(Some(response)) => {
                        flight.slot.complete(Ok(response));
                        return false;
                    }
                    Ok(None) => {}
                    Err(e) => {
                        flight.slot.complete(Err(e));
                        return false;
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => {
                flight.slot.complete(Err(e));
                return false;
            }
        }
    }
}

/// Incremental response parse: `Ok(None)` needs more bytes. Applies the
/// conflicting-`Content-Length` rejection (RFC 7230 §3.3.3) and refuses
/// any `Transfer-Encoding` — the gateway frames bodies by `Content-Length`
/// only, and re-framing a chunked (or otherwise encoded) upstream response
/// for its client would smuggle the chunk metadata into the relayed body.
fn try_parse_response(buffer: &[u8]) -> io::Result<Option<UpstreamResponse>> {
    let Some(head_end) = buffer.windows(4).position(|w| w == b"\r\n\r\n") else {
        return Ok(None);
    };
    let head = std::str::from_utf8(&buffer[..head_end])
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "upstream head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or_default();
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad upstream status line {status_line:?}"),
            )
        })?;
    let mut headers = Vec::new();
    let mut content_length: Option<usize> = None;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "transfer-encoding" {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "upstream response uses Transfer-Encoding; only Content-Length framing is supported",
            ));
        }
        if name == "content-length" {
            let parsed: usize = value
                .parse()
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad upstream Content-Length"))?;
            if content_length.is_some_and(|prev| prev != parsed) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "conflicting Content-Length headers in upstream response",
                ));
            }
            content_length = Some(parsed);
        }
        headers.push((name, value));
    }
    let content_length = content_length.unwrap_or(0);
    let total = head_end + 4 + content_length;
    if buffer.len() < total {
        return Ok(None);
    }
    Ok(Some(UpstreamResponse {
        status,
        headers,
        body: buffer[head_end + 4..total].to_vec(),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn serve_once(response: &'static [u8]) -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        std::thread::spawn(move || {
            if let Ok((mut stream, _)) = listener.accept() {
                // Drain the request head before answering.
                let mut buffer = Vec::new();
                let mut chunk = [0u8; 1024];
                while !buffer.windows(4).any(|w| w == b"\r\n\r\n") {
                    match stream.read(&mut chunk) {
                        Ok(0) => break,
                        Ok(n) => buffer.extend_from_slice(&chunk[..n]),
                        Err(_) => break,
                    }
                }
                let _ = stream.write_all(response);
            }
        });
        addr
    }

    #[test]
    fn submit_round_trips_a_response() {
        let addr = serve_once(b"HTTP/1.1 200 OK\r\nContent-Length: 5\r\nX-Model-Version: 3\r\n\r\nhello");
        let pool = UpstreamPool::new(Duration::from_secs(2)).expect("pool");
        let slot = pool.submit(addr, b"GET / HTTP/1.1\r\n\r\n".to_vec(), Duration::from_secs(5));
        let response = slot.take_timeout(Duration::from_secs(5)).expect("done").expect("ok");
        assert_eq!(response.status, 200);
        assert_eq!(response.body, b"hello");
        assert_eq!(response.header("x-model-version"), Some("3"));
    }

    #[test]
    fn conflicting_upstream_content_length_is_invalid_data() {
        let addr = serve_once(b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\nContent-Length: 7\r\n\r\nhello!!");
        let pool = UpstreamPool::new(Duration::from_secs(2)).expect("pool");
        let slot = pool.submit(addr, b"GET / HTTP/1.1\r\n\r\n".to_vec(), Duration::from_secs(5));
        let err = slot
            .take_timeout(Duration::from_secs(5))
            .expect("done")
            .expect_err("must reject");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");
    }

    #[test]
    fn chunked_upstream_response_is_invalid_data() {
        // A chunked response must be refused outright: framing it by the
        // (absent) Content-Length would relay the chunk metadata as body
        // bytes and desynchronize the downstream connection.
        let addr = serve_once(b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n0\r\n\r\n");
        let pool = UpstreamPool::new(Duration::from_secs(2)).expect("pool");
        let slot = pool.submit(addr, b"GET / HTTP/1.1\r\n\r\n".to_vec(), Duration::from_secs(5));
        let err = slot
            .take_timeout(Duration::from_secs(5))
            .expect("done")
            .expect_err("must reject");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");
    }

    #[test]
    fn deadline_expiry_surfaces_as_timed_out() {
        // A listener that accepts and then never answers.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let hold = std::thread::spawn(move || {
            listener.accept().map(|(s, _)| {
                std::thread::sleep(Duration::from_millis(800));
                drop(s);
            })
        });
        let pool = UpstreamPool::new(Duration::from_secs(2)).expect("pool");
        let slot = pool.submit(addr, b"GET / HTTP/1.1\r\n\r\n".to_vec(), Duration::from_millis(120));
        let err = slot
            .take_timeout(Duration::from_secs(5))
            .expect("done")
            .expect_err("must time out");
        assert_eq!(err.kind(), io::ErrorKind::TimedOut, "{err}");
        let _ = hold.join();
    }

    #[test]
    fn connect_refused_lands_in_the_slot() {
        // Bind then drop: the port is (very likely) unbound afterwards.
        let addr = {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
            listener.local_addr().expect("addr")
        };
        let pool = UpstreamPool::new(Duration::from_millis(500)).expect("pool");
        let slot = pool.submit(addr, b"GET / HTTP/1.1\r\n\r\n".to_vec(), Duration::from_secs(1));
        let result = slot.take_timeout(Duration::from_secs(5)).expect("done");
        assert!(result.is_err(), "connect to an unbound port must fail");
    }

    #[test]
    fn two_submissions_race_and_the_loser_can_be_cancelled() {
        let slow = serve_once(b"HTTP/1.1 200 OK\r\nContent-Length: 4\r\n\r\nslow");
        let fast = serve_once(b"HTTP/1.1 200 OK\r\nContent-Length: 4\r\n\r\nfast");
        let pool = UpstreamPool::new(Duration::from_secs(2)).expect("pool");
        let slow_slot = pool.submit(slow, b"GET / HTTP/1.1\r\n\r\n".to_vec(), Duration::from_secs(5));
        let fast_slot = pool.submit(fast, b"GET / HTTP/1.1\r\n\r\n".to_vec(), Duration::from_secs(5));
        let winner = fast_slot
            .take_timeout(Duration::from_secs(5))
            .expect("done")
            .expect("ok");
        assert_eq!(winner.body, b"fast");
        slow_slot.cancel();
        // Cancellation is advisory: the driver drops the flight; the slot
        // never completes for a waiter, which is fine — nobody waits.
    }
}
