//! The `TrustScore` baseline [Jiang et al., NeurIPS 2018].
//!
//! A clustering-based risk scorer: one "cluster" (here: the set of training
//! feature vectors, optionally density-filtered) is built per class.  For a
//! test pair, let `ρ_Y` be its distance to the cluster of its *predicted*
//! class and `ρ_N` its distance to the nearest cluster of a *different* class.
//! The trust score is `ρ_N / ρ_Y`; we report the risk as its reciprocal
//! ordering (`ρ_Y / ρ_N`), so that larger means riskier.

use serde::{Deserialize, Serialize};

/// Configuration of the TrustScore baseline.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TrustScoreConfig {
    /// Number of nearest neighbours whose average distance defines the
    /// distance to a class cluster.
    pub k_neighbors: usize,
    /// Fraction of the most isolated training points removed from each class
    /// cluster (the α-filtering of the original method).
    pub filter_fraction: f64,
}

impl Default for TrustScoreConfig {
    fn default() -> Self {
        Self {
            k_neighbors: 5,
            filter_fraction: 0.1,
        }
    }
}

/// The fitted TrustScore model: per-class reference points.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrustScore {
    class_points: [Vec<Vec<f64>>; 2],
    config: TrustScoreConfig,
}

fn sq_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

impl TrustScore {
    /// Fits the model on training feature vectors and their binary labels
    /// (`true` = matching class).
    pub fn fit(features: &[Vec<f64>], labels: &[bool], config: TrustScoreConfig) -> Self {
        assert_eq!(features.len(), labels.len());
        assert!(!features.is_empty(), "TrustScore needs training data");
        let mut class_points: [Vec<Vec<f64>>; 2] = [Vec::new(), Vec::new()];
        for (x, &y) in features.iter().zip(labels) {
            class_points[usize::from(y)].push(x.clone());
        }
        // α-filter: drop the most isolated fraction of each class.
        for points in class_points.iter_mut() {
            if points.len() < 5 || config.filter_fraction <= 0.0 {
                continue;
            }
            let mut isolation: Vec<(usize, f64)> = points
                .iter()
                .enumerate()
                .map(|(i, p)| {
                    let mut dists: Vec<f64> = points
                        .iter()
                        .enumerate()
                        .filter(|(j, _)| *j != i)
                        .map(|(_, q)| sq_distance(p, q))
                        .collect();
                    dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
                    let k = config.k_neighbors.min(dists.len().max(1));
                    (i, dists.iter().take(k).sum::<f64>() / k as f64)
                })
                .collect();
            isolation.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
            let keep = ((points.len() as f64) * (1.0 - config.filter_fraction)).ceil() as usize;
            let keep_indices: std::collections::HashSet<usize> =
                isolation.iter().take(keep.max(1)).map(|(i, _)| *i).collect();
            let mut idx = 0usize;
            points.retain(|_| {
                let keep = keep_indices.contains(&idx);
                idx += 1;
                keep
            });
        }
        Self { class_points, config }
    }

    /// Average distance of `x` to its `k` nearest points of a class.
    fn class_distance(&self, x: &[f64], class: usize) -> f64 {
        let points = &self.class_points[class];
        if points.is_empty() {
            return f64::MAX / 4.0;
        }
        let mut dists: Vec<f64> = points.iter().map(|p| sq_distance(x, p)).collect();
        dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let k = self.config.k_neighbors.min(dists.len());
        (dists.iter().take(k).sum::<f64>() / k as f64).sqrt()
    }

    /// Risk score of one pair given its features and the class predicted by
    /// the machine (`true` = matching).  Larger means riskier.
    pub fn risk(&self, x: &[f64], predicted_match: bool) -> f64 {
        let same = self.class_distance(x, usize::from(predicted_match));
        let other = self.class_distance(x, usize::from(!predicted_match));
        // ρ_Y / ρ_N: far from the predicted class and close to the other class
        // ⇒ high risk.  Guard against division by zero for exact duplicates.
        same / other.max(1e-9)
    }

    /// Risk scores for a batch.
    pub fn scores(&self, features: &[Vec<f64>], predicted_match: &[bool]) -> Vec<f64> {
        assert_eq!(features.len(), predicted_match.len());
        features
            .iter()
            .zip(predicted_match)
            .map(|(x, &p)| self.risk(x, p))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_base::rng::seeded;
    use rand::Rng;

    /// Two Gaussian blobs: class 0 around (0,0), class 1 around (3,3).
    fn blobs(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<bool>) {
        let mut rng = seeded(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let is_one = rng.gen_bool(0.5);
            let center = if is_one { 3.0 } else { 0.0 };
            xs.push(vec![
                center + rng.gen_range(-0.5..0.5),
                center + rng.gen_range(-0.5..0.5),
            ]);
            ys.push(is_one);
        }
        (xs, ys)
    }

    #[test]
    fn correct_predictions_near_their_cluster_have_low_risk() {
        let (xs, ys) = blobs(200, 1);
        let ts = TrustScore::fit(&xs, &ys, TrustScoreConfig::default());
        // A point near the class-1 blob predicted as class 1: low risk.
        let low = ts.risk(&[3.1, 2.9], true);
        // The same point predicted as class 0: high risk.
        let high = ts.risk(&[3.1, 2.9], false);
        assert!(
            high > low * 3.0,
            "risk should flip with the predicted class: {low} vs {high}"
        );
    }

    #[test]
    fn boundary_points_have_intermediate_risk() {
        let (xs, ys) = blobs(200, 2);
        let ts = TrustScore::fit(&xs, &ys, TrustScoreConfig::default());
        let confident = ts.risk(&[0.0, 0.0], false);
        let boundary = ts.risk(&[1.5, 1.5], false);
        assert!(boundary > confident);
    }

    #[test]
    fn batch_scores_align_with_inputs() {
        let (xs, ys) = blobs(100, 3);
        let ts = TrustScore::fit(&xs, &ys, TrustScoreConfig::default());
        let test = vec![vec![0.1, 0.1], vec![2.9, 3.1]];
        let preds = vec![false, true];
        let scores = ts.scores(&test, &preds);
        assert_eq!(scores.len(), 2);
        assert!(scores.iter().all(|s| s.is_finite() && *s >= 0.0));
    }

    #[test]
    fn missing_class_degrades_gracefully() {
        // Only class-0 examples in training.
        let xs = vec![
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![0.0, 0.1],
            vec![0.2, 0.1],
            vec![0.1, 0.2],
        ];
        let ys = vec![false; 5];
        let ts = TrustScore::fit(&xs, &ys, TrustScoreConfig::default());
        let r = ts.risk(&[0.0, 0.0], false);
        assert!(r.is_finite());
        assert!(r < 1.0, "point inside the only cluster should look safe");
    }

    #[test]
    fn filtering_removes_isolated_points() {
        let (mut xs, mut ys) = blobs(100, 4);
        // Add one extreme outlier to class 1.
        xs.push(vec![50.0, 50.0]);
        ys.push(true);
        let filtered = TrustScore::fit(
            &xs,
            &ys,
            TrustScoreConfig {
                filter_fraction: 0.1,
                k_neighbors: 5,
            },
        );
        let unfiltered = TrustScore::fit(
            &xs,
            &ys,
            TrustScoreConfig {
                filter_fraction: 0.0,
                k_neighbors: 5,
            },
        );
        // Near the outlier, the filtered model sees class 1 as far away -> higher risk for predicting class 1.
        let r_filtered = filtered.risk(&[49.0, 49.0], true);
        let r_unfiltered = unfiltered.risk(&[49.0, 49.0], true);
        assert!(r_filtered > r_unfiltered);
    }

    #[test]
    #[should_panic(expected = "training data")]
    fn empty_training_panics() {
        TrustScore::fit(&[], &[], TrustScoreConfig::default());
    }
}
