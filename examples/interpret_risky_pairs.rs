//! Interpretable risk analysis on a product-matching workload (Abt-Buy style):
//! train the pipeline, then walk through the top-10 riskiest pairs and show
//! which rules and classifier evidence drive each risk score — the
//! interpretability story of the paper (Sections 4–5).
//!
//! ```bash
//! cargo run --release --example interpret_risky_pairs
//! ```

use learnrisk_repro::base::SplitRatio;
use learnrisk_repro::datasets::{generate_benchmark, BenchmarkId};
use learnrisk_repro::eval::{run_pipeline, PipelineConfig};

fn main() {
    let dataset = generate_benchmark(BenchmarkId::AbtBuy, 0.02, 7);
    let workload = &dataset.workload;
    println!(
        "Workload {}: {} pairs ({} matches)",
        workload.name,
        workload.len(),
        workload.match_count()
    );

    let (result, artifacts) = run_pipeline(workload, SplitRatio::new(3, 2, 5), &PipelineConfig::default());
    println!(
        "Classifier F1 {:.3}; {} of {} test pairs mislabeled; {} risk features generated\n",
        result.classifier_f1, result.test_mislabeled, result.test_size, result.rule_count
    );

    // Print a sample of the generated interpretable rules.
    println!("Sample risk features (one-sided rules):");
    for i in 0..artifacts.risk_model.features.len().min(8) {
        println!("  [{i}] {}", artifacts.risk_model.features.describe(i));
    }

    // Rank the test pairs by LearnRisk and inspect the top 10.
    let learnrisk = result
        .methods
        .iter()
        .find(|m| m.method == "LearnRisk")
        .expect("LearnRisk scores");
    let mut order: Vec<usize> = (0..learnrisk.scores.len()).collect();
    order.sort_by(|&a, &b| learnrisk.scores[b].partial_cmp(&learnrisk.scores[a]).unwrap());

    println!("\nTop-10 riskiest test pairs:");
    println!(
        "{:<6} {:>8} {:>10} {:>10} {:<30}",
        "rank", "risk", "clf p", "machine", "top evidence"
    );
    for (rank, &idx) in order.iter().take(10).enumerate() {
        let input = &artifacts.test_inputs[idx];
        let explanation = artifacts.risk_model.explain(input);
        // The highest-weighted contribution that disagrees with the machine label.
        let top = explanation
            .iter()
            .max_by(|a, b| {
                let disagreement = |c: &learnrisk_repro::core::FeatureContribution| {
                    if input.machine_says_match {
                        (1.0 - c.expectation) * c.weight
                    } else {
                        c.expectation * c.weight
                    }
                };
                disagreement(a).partial_cmp(&disagreement(b)).unwrap()
            })
            .expect("at least the classifier feature");
        println!(
            "{:<6} {:>8.3} {:>10.3} {:>10} {:<30}",
            rank + 1,
            learnrisk.scores[idx],
            input.classifier_output,
            if input.machine_says_match { "match" } else { "unmatch" },
            truncate(&top.description, 48),
        );
    }

    // How many of the top-10 are actually mislabeled?
    let hits = order
        .iter()
        .take(10)
        .filter(|&&idx| artifacts.test_inputs[idx].risk_label == 1)
        .count();
    println!("\n{hits} of the top-10 ranked pairs are actually mislabeled by the classifier.");
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_owned()
    } else {
        format!("{}…", &s[..n])
    }
}
