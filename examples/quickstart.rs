//! Quickstart: run the full LearnRisk pipeline on a small synthetic
//! DBLP-Scholar-style workload and print the AUROC of every risk method.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use learnrisk_repro::base::SplitRatio;
use learnrisk_repro::datasets::{generate_benchmark, BenchmarkId};
use learnrisk_repro::eval::{run_pipeline, PipelineConfig};

fn main() {
    // 1. Generate a candidate-pair workload emulating DBLP-Scholar
    //    (schema, dirtiness and class imbalance follow the paper's Table 2).
    let dataset = generate_benchmark(BenchmarkId::DblpScholar, 0.03, 42);
    let workload = &dataset.workload;
    println!(
        "Workload {}: {} candidate pairs, {} matches, {} attributes",
        workload.name,
        workload.len(),
        workload.match_count(),
        workload.attribute_count()
    );

    // 2. Run the end-to-end pipeline at the paper's 3:2:5 split:
    //    train the classifier, generate risk features, train the risk model,
    //    and score the test pairs with LearnRisk and all baselines.
    let config = PipelineConfig::default();
    let (result, artifacts) = run_pipeline(workload, SplitRatio::new(3, 2, 5), &config);

    println!("\nClassifier F1 on the test split: {:.3}", result.classifier_f1);
    println!(
        "Mislabeled test pairs: {} / {}",
        result.test_mislabeled, result.test_size
    );
    println!("Generated risk features (rules): {}\n", result.rule_count);

    println!("{:<14} {:>8}", "Method", "AUROC");
    for method in &result.methods {
        println!("{:<14} {:>8.3}", method.method, method.auroc);
    }

    // 3. Inspect the interpretable explanation of the riskiest test pair.
    let learnrisk = result
        .methods
        .iter()
        .find(|m| m.method == "LearnRisk")
        .expect("LearnRisk result");
    let riskiest = learnrisk
        .scores
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)
        .expect("non-empty test split");
    println!(
        "\nRiskiest test pair (risk = {:.3}) — feature contributions:",
        learnrisk.scores[riskiest]
    );
    for contribution in artifacts.risk_model.explain(&artifacts.test_inputs[riskiest]) {
        println!(
            "  w={:<6.2} mu={:<5.2} sigma={:<5.2}  {}",
            contribution.weight, contribution.expectation, contribution.std, contribution.description
        );
    }
}
