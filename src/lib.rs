//! # learnrisk-repro
//!
//! A from-scratch Rust reproduction of *"Towards Interpretable and Learnable
//! Risk Analysis for Entity Resolution"* (SIGMOD 2020).
//!
//! This façade crate re-exports the workspace crates so that downstream users
//! can depend on a single crate:
//!
//! * [`base`] (`er-base`) — records, pairs, workloads, ROC/AUROC metrics.
//! * [`similarity`] (`er-similarity`) — similarity and difference metrics.
//! * [`datasets`] (`er-datasets`) — synthetic benchmark generators + blocking.
//! * [`classifier`] (`er-classifier`) — the DeepMatcher-substitute matchers.
//! * [`rulegen`] (`er-rulegen`) — one-sided decision-tree rule generation.
//! * [`core`] (`learnrisk-core`) — the LearnRisk risk model itself.
//! * [`pool`] (`er-pool`) — the persistent work-stealing worker pool the
//!   scoring executor and the trainer share.
//! * [`baselines`] (`er-baselines`) — Baseline, Uncertainty, TrustScore,
//!   StaticRisk and the HoloClean adaptation.
//! * [`eval`] (`er-eval`) — end-to-end experiment pipelines for every table
//!   and figure of the paper.
//! * [`serve`] (`er-serve`) — the online serving layer: versioned model
//!   artifacts, the compiled rule index, the sharded scoring executor, the
//!   HTTP/1.1 front-end with micro-batching and backpressure, versioned
//!   artifact hot-reload and the traffic-replay harness.
//!
//! See the `examples/` directory for runnable end-to-end walkthroughs and
//! `EXPERIMENTS.md` for the measured reproduction results.

#![warn(missing_docs)]

pub use er_base as base;
pub use er_baselines as baselines;
pub use er_classifier as classifier;
pub use er_datasets as datasets;
pub use er_eval as eval;
pub use er_pool as pool;
pub use er_rulegen as rulegen;
pub use er_serve as serve;
pub use er_similarity as similarity;
pub use learnrisk_core as core;
