//! The classifier-output influence function (Eq. 11 of the paper).
//!
//! The classifier's probability output is itself a risk feature.  Its weight
//! in the risk portfolio is not a free per-value parameter; instead it is the
//! bell-shaped function
//!
//! ```text
//! f_w(x) = -exp( -(x - 0.5)² / (2 α²) ) + β + 1
//! ```
//!
//! of the output `x`, with only two learnable shape parameters `α` and `β`.
//! The influence is lowest at the ambiguous output 0.5 (where the classifier
//! carries little information) and grows toward the extremes 0 and 1.

use serde::{Deserialize, Serialize};

/// Learnable influence function of the classifier-output feature.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InfluenceFunction {
    /// Width of the central dip.
    pub alpha: f64,
    /// Vertical offset; `f_w(0.5) = β` and `f_w(x) → β + 1` at the extremes
    /// (for small `α`).
    pub beta: f64,
}

impl InfluenceFunction {
    /// Creates an influence function.
    ///
    /// # Panics
    /// Panics for non-positive `α` (the function would be degenerate).
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(alpha > 0.0, "alpha must be positive, got {alpha}");
        Self { alpha, beta }
    }

    /// Evaluates the influence (weight) at classifier output `x`.
    pub fn weight(&self, x: f64) -> f64 {
        -self.gaussian(x) + self.beta + 1.0
    }

    /// The Gaussian bump `exp(-(x-0.5)²/(2α²))`.
    fn gaussian(&self, x: f64) -> f64 {
        let d = x - 0.5;
        (-(d * d) / (2.0 * self.alpha * self.alpha)).exp()
    }

    /// Partial derivative of the weight with respect to `α`.
    pub fn d_weight_d_alpha(&self, x: f64) -> f64 {
        let d = x - 0.5;
        // d/dα [-exp(u)] with u = -d²/(2α²); du/dα = d²/α³.
        -self.gaussian(x) * (d * d) / (self.alpha * self.alpha * self.alpha)
    }

    /// Partial derivative of the weight with respect to `β` (always 1).
    pub fn d_weight_d_beta(&self) -> f64 {
        1.0
    }
}

impl Default for InfluenceFunction {
    fn default() -> Self {
        // The paper's illustrative example (Figure 8) uses α = 0.2; β is
        // learned — 4.0 is a neutral starting point giving the classifier
        // output a few rules' worth of weight.
        Self { alpha: 0.2, beta: 4.0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_is_minimal_at_ambiguous_output() {
        let f = InfluenceFunction::new(0.2, 10.0);
        let mid = f.weight(0.5);
        assert!(f.weight(0.0) > mid);
        assert!(f.weight(1.0) > mid);
        assert!(f.weight(0.3) > mid);
        // Figure 8 of the paper: with α=0.2, β=10 the weight ranges in (10, 11].
        assert!((mid - 10.0).abs() < 1e-9);
        assert!(f.weight(0.0) <= 11.0 && f.weight(0.0) > 10.9);
    }

    #[test]
    fn weight_is_symmetric_around_half() {
        let f = InfluenceFunction::new(0.15, 3.0);
        for &d in &[0.05, 0.1, 0.2, 0.4] {
            assert!((f.weight(0.5 - d) - f.weight(0.5 + d)).abs() < 1e-12);
        }
    }

    #[test]
    fn weight_increases_monotonically_with_extremeness() {
        let f = InfluenceFunction::default();
        let mut prev = f.weight(0.5);
        for k in 1..=10 {
            let x = 0.5 + 0.05 * k as f64;
            let w = f.weight(x);
            assert!(w >= prev, "weight should not decrease toward the extremes");
            prev = w;
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        let f = InfluenceFunction::new(0.27, 5.5);
        let eps = 1e-6;
        for &x in &[0.1, 0.45, 0.5, 0.62, 0.98] {
            let num_alpha = (InfluenceFunction::new(f.alpha + eps, f.beta).weight(x)
                - InfluenceFunction::new(f.alpha - eps, f.beta).weight(x))
                / (2.0 * eps);
            assert!((num_alpha - f.d_weight_d_alpha(x)).abs() < 1e-5, "x={x}");
            let num_beta = (InfluenceFunction::new(f.alpha, f.beta + eps).weight(x)
                - InfluenceFunction::new(f.alpha, f.beta - eps).weight(x))
                / (2.0 * eps);
            assert!((num_beta - f.d_weight_d_beta()).abs() < 1e-6, "x={x}");
        }
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn non_positive_alpha_panics() {
        InfluenceFunction::new(0.0, 1.0);
    }
}
