//! Cross-cutting properties of the serving subsystem:
//!
//! * **artifact round trip** — for random trained models, save → load →
//!   `score_batch` reproduces the in-memory model's scores bit-exactly;
//! * **determinism under sharding** — `score_batch` with 1 thread and N
//!   threads produces identical results on the same batch, cache on or off;
//! * **version gating** — a bumped format version is rejected with a clear
//!   error (public-API check; the unit suite covers the error variants);
//! * **hot-reload atomicity** — under concurrent scoring threads, every
//!   response scored through a [`ReloadableExecutor`] snapshot carries a
//!   version tag that is exactly the old or the new artifact version, with
//!   scores bit-identical to a fresh engine of that version (never a torn
//!   mix), and post-swap scores equal a fresh engine built from the new
//!   artifact.

use er_base::Label;
use er_rulegen::{CmpOp, Condition, Rule};
use er_serve::{
    ModelArtifact, ReloadableExecutor, ReplayConfig, ScoreRequest, ScoringEngine, ServeConfig, ShardedExecutor,
    FORMAT_VERSION,
};
use learnrisk_core::{LearnRiskModel, RiskFeatureSet, RiskModelConfig};
use proptest::prelude::*;
use rand::prelude::*;

/// Number of metric slots every generated rule set and request row uses.
const METRICS: usize = 4;

/// Builds a random *trained-looking* model: random rules plus learnable
/// parameters drawn from their feasible ranges (the same ranges the trainer
/// projects onto), so every generated model passes validation.
fn model_from(rule_specs: Vec<Vec<(usize, bool, f64)>>, seed: u64) -> LearnRiskModel {
    let mut rng = StdRng::seed_from_u64(seed);
    let rules: Vec<Rule> = rule_specs
        .into_iter()
        .map(|conds| {
            let target = if rng.gen_bool(0.5) {
                Label::Equivalent
            } else {
                Label::Inequivalent
            };
            let conditions = conds
                .into_iter()
                .map(|(m, gt, t)| Condition::new(m, if gt { CmpOp::Gt } else { CmpOp::Le }, t))
                .collect();
            Rule::new(conditions, target, rng.gen_range(1usize..200), rng.gen_range(0.8..1.0))
        })
        .collect();
    let n = rules.len();
    let feature_set = RiskFeatureSet {
        rules,
        metrics: vec![],
        expectations: (0..n).map(|_| rng.gen_range(0.0..=1.0)).collect(),
        support: (0..n).map(|_| rng.gen_range(1usize..500)).collect(),
    };
    let mut model = LearnRiskModel::new(feature_set, RiskModelConfig::default());
    model.rule_weights = (0..n).map(|_| rng.gen_range(1e-3..10.0)).collect();
    model.rule_rsd = (0..n).map(|_| rng.gen_range(1e-3..2.0)).collect();
    model.influence.alpha = rng.gen_range(0.05..2.0);
    model.influence.beta = rng.gen_range(0.0..20.0);
    for rsd in model.output_rsd.iter_mut() {
        *rsd = rng.gen_range(1e-3..2.0);
    }
    model.validate().expect("generated model must be valid");
    model
}

fn arb_model() -> impl Strategy<Value = LearnRiskModel> {
    (
        proptest::collection::vec(
            proptest::collection::vec((0usize..METRICS, 0u8..2, 0.0f64..1.0), 1..4),
            1..10,
        ),
        0.0f64..1.0,
    )
        .prop_map(|(specs, unit_seed)| {
            let specs = specs
                .into_iter()
                .map(|conds| conds.into_iter().map(|(m, op, t)| (m, op == 0, t)).collect())
                .collect();
            model_from(specs, (unit_seed * u32::MAX as f64) as u64)
        })
}

/// Generates a batch as draws from a consistent pool of pairs: equal
/// `pair_id`s always carry identical content (the [`ScoreRequest::pair_id`]
/// contract the cache relies on), while the small pool guarantees repeats.
fn arb_requests() -> impl Strategy<Value = Vec<ScoreRequest>> {
    (
        proptest::collection::vec(
            (
                proptest::collection::vec(0.0f64..1.0, METRICS..METRICS + 1),
                0.0f64..1.0,
            ),
            1..12,
        ),
        proptest::collection::vec(0.0f64..1.0, 1..60),
    )
        .prop_map(|(pool, draws)| {
            let requests: Vec<ScoreRequest> = pool
                .into_iter()
                .enumerate()
                .map(|(i, (metric_row, p))| ScoreRequest {
                    pair_id: i as u64,
                    metric_row,
                    classifier_output: p,
                    machine_says_match: p >= 0.5,
                })
                .collect();
            draws
                .into_iter()
                .map(|u| requests[(u * requests.len() as f64) as usize % requests.len()].clone())
                .collect()
        })
}

fn bits(scores: &[f64]) -> Vec<u64> {
    scores.iter().map(|s| s.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn artifact_round_trip_scores_bit_exactly(model in arb_model(), requests in arb_requests()) {
        let original = ScoringEngine::new(model.clone());
        let artifact = ModelArtifact::new(model.clone());
        let reloaded = ModelArtifact::from_json(&artifact.to_json())
            .expect("round trip must parse");
        let served = ScoringEngine::new(reloaded.model);
        prop_assert_eq!(bits(&served.score_batch(&requests)), bits(&original.score_batch(&requests)));
    }

    #[test]
    fn score_batch_is_deterministic_under_sharding(model in arb_model(), requests in arb_requests()) {
        let engine = ScoringEngine::new(model.clone());
        let single = ShardedExecutor::new(engine.clone(), ServeConfig::default().with_threads(1))
            .score_batch(&requests);
        for threads in [2usize, 5] {
            // Cache enabled...
            let multi = ShardedExecutor::new(engine.clone(), ServeConfig::default().with_threads(threads))
                .score_batch(&requests);
            prop_assert_eq!(bits(&multi), bits(&single));
            // ...and disabled: the cache must never change a score.
            let uncached = ShardedExecutor::new(
                engine.clone(),
                ServeConfig { threads, cache_capacity: 0, cache_shards: 1 },
            )
            .score_batch(&requests);
            prop_assert_eq!(bits(&uncached), bits(&single));
        }
    }

    #[test]
    fn replayed_streams_score_identically_across_thread_counts(model in arb_model()) {
        // The full serving path: Zipf stream + cache + threads vs a plain
        // sequential pass over the same stream.
        let engine = ScoringEngine::new(model.clone());
        let pool: Vec<ScoreRequest> = (0..30)
            .map(|i| {
                let x = (i as f64 * 0.37).fract();
                ScoreRequest {
                    pair_id: i,
                    metric_row: vec![x, 1.0 - x, (x * 3.0).fract(), (x * 7.0).fract()],
                    classifier_output: x,
                    machine_says_match: x >= 0.5,
                }
            })
            .collect();
        let stream = er_serve::zipf_stream(&pool, &ReplayConfig { requests: 400, zipf_exponent: 1.1, seed: 11 });
        let sequential = engine.score_batch(&stream);
        let sharded = ShardedExecutor::new(engine.clone(), ServeConfig::default().with_threads(4))
            .score_batch(&stream);
        prop_assert_eq!(bits(&sharded), bits(&sequential));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn hot_reload_is_atomic_under_concurrent_scoring(
        old_model in arb_model(),
        new_model in arb_model(),
        requests in arb_requests(),
    ) {
        let old_expected = bits(&ScoringEngine::new(old_model.clone()).score_batch(&requests));
        let new_expected = bits(&ScoringEngine::new(new_model.clone()).score_batch(&requests));

        let handle = ReloadableExecutor::new(
            ScoringEngine::new(old_model.clone()),
            ServeConfig { threads: 1, cache_capacity: 64, cache_shards: 4 },
        );
        let artifact = ModelArtifact::new(new_model.clone());

        // Scorer threads hammer the handle while the main thread swaps the
        // artifact in; every observed (version, scores) pair must be wholly
        // attributable to one version's engine.
        let observations: Vec<(u64, Vec<u64>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let requests = &requests;
                    let handle = &handle;
                    scope.spawn(move || {
                        let mut seen = Vec::new();
                        for _ in 0..40 {
                            let snapshot = handle.snapshot();
                            let scores = snapshot.executor().score_batch(requests);
                            seen.push((snapshot.version, bits(&scores)));
                        }
                        seen
                    })
                })
                .collect();
            let reloaded_to = handle.reload_artifact(artifact, &requests).expect("reload");
            assert_eq!(reloaded_to, 2);
            // One post-reload observation from this thread guarantees the
            // new version appears in the record even if the scorers were
            // scheduled entirely before the swap (single-CPU runners).
            let snapshot = handle.snapshot();
            let post_swap = (snapshot.version, bits(&snapshot.executor().score_batch(&requests)));
            let mut all: Vec<(u64, Vec<u64>)> =
                handles.into_iter().flat_map(|h| h.join().expect("scorer panicked")).collect();
            all.push(post_swap);
            all
        });

        let mut versions_seen = [false; 2];
        for (version, observed) in &observations {
            prop_assert!(
                *version == 1 || *version == 2,
                "impossible version tag {version}"
            );
            versions_seen[(*version - 1) as usize] = true;
            let expected = if *version == 1 { &old_expected } else { &new_expected };
            // Equality against exactly one version's engine is the
            // no-torn-batch property: a mixed-version batch cannot match.
            prop_assert_eq!(observed, expected);
        }
        // The swap happened while scorers ran, so the new version must have
        // been observed by the tail iterations at the latest.
        prop_assert!(versions_seen[1], "no scorer ever saw the new version");

        // Post-swap, a fresh snapshot is bit-identical to a fresh engine
        // built directly from the new artifact.
        let post = handle.snapshot();
        prop_assert_eq!(post.version, 2);
        prop_assert_eq!(bits(&post.executor().score_batch(&requests)), new_expected);
    }
}

#[test]
fn bumped_format_version_is_rejected_through_the_public_api() {
    let model = model_from(vec![vec![(0, true, 0.5)]], 7);
    let artifact = ModelArtifact::new(model);
    let json = artifact.to_json();
    let bumped = json.replace(
        &format!("\"format_version\": {FORMAT_VERSION}"),
        &format!("\"format_version\": {}", FORMAT_VERSION + 41),
    );
    assert_ne!(json, bumped, "the version field must exist in the payload");
    let err = ModelArtifact::from_json(&bumped).expect_err("must reject");
    let message = err.to_string();
    assert!(
        message.contains(&format!("{}", FORMAT_VERSION + 41)) && message.contains("not supported"),
        "unclear version error: {message}"
    );
}
