//! A small multi-layer perceptron — the "deep" half of the DeepMatcher
//! substitute.
//!
//! One or two hidden layers with ReLU activations and a sigmoid output,
//! trained with mini-batch Adam and backpropagation.  Deliberately compact:
//! the risk-analysis experiments only need a non-linear classifier whose
//! probability outputs behave like a trained matcher's (confident on easy
//! pairs, ambiguous or wrong on dirty ones).

use crate::classifier::{Classifier, TrainConfig};
use crate::optim::{Adam, Optimizer};
use er_base::rng::{sample_normal, substream};
use er_base::stats::sigmoid;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

/// A fully connected layer `y = activation(W x + b)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Layer {
    /// Row-major weights, `out_dim × in_dim`.
    weights: Vec<f64>,
    bias: Vec<f64>,
    in_dim: usize,
    out_dim: usize,
}

impl Layer {
    fn new(in_dim: usize, out_dim: usize, rng: &mut impl rand::Rng) -> Self {
        // He initialization for ReLU layers.
        let std = (2.0 / in_dim as f64).sqrt();
        let weights = (0..in_dim * out_dim).map(|_| sample_normal(rng, 0.0, std)).collect();
        Self {
            weights,
            bias: vec![0.0; out_dim],
            in_dim,
            out_dim,
        }
    }

    fn forward(&self, x: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.reserve(self.out_dim);
        for o in 0..self.out_dim {
            let row = &self.weights[o * self.in_dim..(o + 1) * self.in_dim];
            let mut acc = self.bias[o];
            for (w, v) in row.iter().zip(x) {
                acc += w * v;
            }
            out.push(acc);
        }
    }

    fn param_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }
}

/// Multi-layer perceptron with ReLU hidden layers and sigmoid output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Layer>,
    input_dim: usize,
}

impl Mlp {
    /// Creates an MLP with the given hidden layer sizes; the output layer has
    /// a single unit.
    pub fn new(input_dim: usize, hidden: &[usize], seed: u64) -> Self {
        assert!(input_dim > 0, "input dimension must be positive");
        let mut rng = substream(seed, 0x31);
        let mut layers = Vec::with_capacity(hidden.len() + 1);
        let mut prev = input_dim;
        for &h in hidden {
            assert!(h > 0, "hidden layer sizes must be positive");
            layers.push(Layer::new(prev, h, &mut rng));
            prev = h;
        }
        layers.push(Layer::new(prev, 1, &mut rng));
        Self { layers, input_dim }
    }

    /// Total number of parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Layer::param_count).sum()
    }

    /// Forward pass keeping intermediate activations for backprop.
    /// Returns `(pre_activations, post_activations)` per layer and the output
    /// probability.
    fn forward_full(&self, x: &[f64]) -> (Vec<Vec<f64>>, Vec<Vec<f64>>, f64) {
        let mut pre = Vec::with_capacity(self.layers.len());
        let mut post = Vec::with_capacity(self.layers.len());
        let mut current = x.to_vec();
        for (li, layer) in self.layers.iter().enumerate() {
            let mut z = Vec::new();
            layer.forward(&current, &mut z);
            pre.push(z.clone());
            let is_output = li + 1 == self.layers.len();
            let activated: Vec<f64> = if is_output {
                z
            } else {
                z.into_iter().map(|v| v.max(0.0)).collect()
            };
            post.push(activated.clone());
            current = activated;
        }
        let prob = sigmoid(post.last().unwrap()[0]);
        (pre, post, prob)
    }

    /// Flattens all parameters into a single vector (layer by layer, weights
    /// then biases).
    fn flatten(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.param_count());
        for l in &self.layers {
            out.extend_from_slice(&l.weights);
            out.extend_from_slice(&l.bias);
        }
        out
    }

    fn unflatten(&mut self, params: &[f64]) {
        let mut offset = 0;
        for l in &mut self.layers {
            let w_len = l.weights.len();
            let b_len = l.bias.len();
            l.weights.copy_from_slice(&params[offset..offset + w_len]);
            offset += w_len;
            l.bias.copy_from_slice(&params[offset..offset + b_len]);
            offset += b_len;
        }
        debug_assert_eq!(offset, params.len());
    }

    /// Accumulates the gradient of the cross-entropy loss for one example into
    /// `grads` (same layout as [`Mlp::flatten`]).
    fn accumulate_gradient(&self, x: &[f64], y: f64, weight: f64, grads: &mut [f64]) {
        let (pre, post, prob) = self.forward_full(x);
        // Delta of the output layer (sigmoid + cross entropy): p - y.
        let mut delta = vec![weight * (prob - y)];
        // Walk the layers backwards, writing gradients.
        // Pre-compute per-layer gradient offsets.
        let mut offsets = Vec::with_capacity(self.layers.len());
        let mut off = 0;
        for l in &self.layers {
            offsets.push(off);
            off += l.param_count();
        }
        for li in (0..self.layers.len()).rev() {
            let layer = &self.layers[li];
            let input: &[f64] = if li == 0 { x } else { &post[li - 1] };
            let base = offsets[li];
            // dW[o][i] = delta[o] * input[i]; db[o] = delta[o]
            for o in 0..layer.out_dim {
                let row = base + o * layer.in_dim;
                for (i, &inp) in input.iter().enumerate() {
                    grads[row + i] += delta[o] * inp;
                }
                grads[base + layer.weights.len() + o] += delta[o];
            }
            if li > 0 {
                // Propagate delta to the previous layer through W and ReLU.
                let prev_dim = layer.in_dim;
                let mut new_delta = vec![0.0; prev_dim];
                for (o, &d) in delta.iter().enumerate() {
                    let row = &layer.weights[o * layer.in_dim..(o + 1) * layer.in_dim];
                    for (i, &w) in row.iter().enumerate() {
                        new_delta[i] += d * w;
                    }
                }
                // ReLU derivative of the previous layer's pre-activation.
                for (d, &z) in new_delta.iter_mut().zip(&pre[li - 1]) {
                    if z <= 0.0 {
                        *d = 0.0;
                    }
                }
                delta = new_delta;
            }
        }
    }
}

impl Classifier for Mlp {
    fn train(&mut self, xs: &[Vec<f64>], ys: &[f64], config: &TrainConfig) {
        assert_eq!(xs.len(), ys.len());
        if xs.is_empty() {
            return;
        }
        assert_eq!(xs[0].len(), self.input_dim, "feature dimension mismatch");
        let mut optimizer = Adam::new(config.learning_rate);
        let mut rng = substream(config.seed, 0x32);
        let mut order: Vec<usize> = (0..xs.len()).collect();
        let batch = config.batch_size.max(1).min(xs.len());
        let pos = ys.iter().filter(|&&y| y >= 0.5).count().max(1) as f64;
        let neg = (ys.len() as f64 - pos).max(1.0);
        let pos_weight = if config.balance_classes {
            (neg / pos).min(50.0)
        } else {
            1.0
        };

        let mut params = self.flatten();
        let mut grads = vec![0.0; params.len()];
        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(batch) {
                grads.iter_mut().for_each(|g| *g = 0.0);
                for &i in chunk {
                    let w = if ys[i] >= 0.5 { pos_weight } else { 1.0 };
                    self.accumulate_gradient(&xs[i], ys[i], w, &mut grads);
                }
                let scale = 1.0 / chunk.len() as f64;
                grads.iter_mut().for_each(|g| *g *= scale);
                config.regularization.add_gradient(&params, &mut grads);
                optimizer.step(&mut params, &grads);
                self.unflatten(&params);
            }
        }
    }

    fn predict_proba(&self, x: &[f64]) -> f64 {
        let (_, _, p) = self.forward_full(x);
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_base::rng::seeded;
    use rand::Rng;

    /// XOR-like data that a linear model cannot fit.
    fn xor_data(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = seeded(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let a = rng.gen_range(0.0..1.0);
            let b = rng.gen_range(0.0..1.0);
            let label = ((a > 0.5) ^ (b > 0.5)) as u8 as f64;
            xs.push(vec![a, b]);
            ys.push(label);
        }
        (xs, ys)
    }

    #[test]
    fn mlp_learns_xor() {
        let (xs, ys) = xor_data(600, 5);
        let mut mlp = Mlp::new(2, &[16, 8], 3);
        let config = TrainConfig {
            epochs: 200,
            learning_rate: 0.01,
            batch_size: 32,
            ..TrainConfig::default()
        };
        mlp.train(&xs, &ys, &config);
        let acc = xs
            .iter()
            .zip(&ys)
            .filter(|(x, &y)| (mlp.predict_proba(x) >= 0.5) == (y >= 0.5))
            .count() as f64
            / xs.len() as f64;
        assert!(acc > 0.9, "XOR accuracy {acc}");
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mlp = Mlp::new(3, &[4], 11);
        let x = vec![0.3, -0.7, 1.2];
        let y = 1.0;
        let mut analytic = vec![0.0; mlp.param_count()];
        mlp.accumulate_gradient(&x, y, 1.0, &mut analytic);

        let loss = |m: &Mlp| {
            let p = er_base::stats::clamp_prob(m.predict_proba(&x));
            -(y * p.ln() + (1.0 - y) * (1.0 - p).ln())
        };
        let params = mlp.flatten();
        let eps = 1e-6;
        for idx in [0usize, 3, 7, analytic.len() - 1] {
            let mut plus = params.clone();
            plus[idx] += eps;
            let mut minus = params.clone();
            minus[idx] -= eps;
            let mut m_plus = mlp.clone();
            m_plus.unflatten(&plus);
            let mut m_minus = mlp.clone();
            m_minus.unflatten(&minus);
            let numeric = (loss(&m_plus) - loss(&m_minus)) / (2.0 * eps);
            assert!(
                (numeric - analytic[idx]).abs() < 1e-4,
                "param {idx}: numeric {numeric} vs analytic {}",
                analytic[idx]
            );
        }
    }

    #[test]
    fn output_is_a_probability() {
        let mlp = Mlp::new(4, &[8], 1);
        let mut rng = seeded(9);
        for _ in 0..100 {
            let x: Vec<f64> = (0..4).map(|_| rng.gen_range(-3.0..3.0)).collect();
            let p = mlp.predict_proba(&x);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn param_count_is_consistent() {
        let mlp = Mlp::new(10, &[16, 8], 2);
        // (10*16 + 16) + (16*8 + 8) + (8*1 + 1)
        assert_eq!(mlp.param_count(), 176 + 136 + 9);
        assert_eq!(mlp.flatten().len(), mlp.param_count());
    }

    #[test]
    #[should_panic(expected = "feature dimension mismatch")]
    fn dimension_mismatch_panics() {
        let mut mlp = Mlp::new(3, &[4], 1);
        mlp.train(&[vec![1.0, 2.0]], &[1.0], &TrainConfig::default());
    }
}
