//! Offline stand-in for the parts of `serde` this workspace touches.
//!
//! The tree derives `Serialize` / `Deserialize` on its public data types as
//! forward-looking annotations but never serializes anything, and the build
//! environment cannot reach crates.io. This crate mirrors serde's import
//! surface (`use serde::{Deserialize, Serialize}` resolves both the traits and
//! the derive macros) so the real crate can be dropped in later by only
//! editing `[workspace.dependencies]`.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of `serde::Serialize`; the vendored derive emits no impl
/// because nothing in the workspace consumes the bound.
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
