//! Regenerates Figure 10 (out-of-distribution evaluation).
use er_eval::{render_auroc_table, run_fig10};

fn main() {
    let config = er_bench::config_from_args(0.05);
    let results = run_fig10(&config);
    println!(
        "{}",
        render_auroc_table(
            &format!("Figure 10 — out-of-distribution AUROC (scale {})", config.scale),
            &results
        )
    );
}
