//! The `Baseline` and `Uncertainty` risk scorers (Section 7 of the paper).

use er_classifier::BootstrapEnsemble;

/// `Baseline` [Hendrycks & Gimpel]: the risk of a pair is the ambiguity of its
/// classifier output — outputs close to 0.5 are risky, extreme outputs are
/// safe.  Returns one risk score per output.
pub fn baseline_scores(outputs: &[f64]) -> Vec<f64> {
    outputs.iter().map(|&p| 0.5 - (p.clamp(0.0, 1.0) - 0.5).abs()).collect()
}

/// `Uncertainty` [Mozafari et al.]: the risk of a pair is the disagreement of
/// a bootstrap ensemble, `p(1-p)` of the ensemble vote fraction.
pub struct UncertaintyScorer<'a> {
    ensemble: &'a BootstrapEnsemble,
}

impl<'a> UncertaintyScorer<'a> {
    /// Creates a scorer over a trained bootstrap ensemble.
    pub fn new(ensemble: &'a BootstrapEnsemble) -> Self {
        Self { ensemble }
    }

    /// Risk scores for feature vectors (one per pair).
    pub fn scores(&self, features: &[Vec<f64>]) -> Vec<f64> {
        features.iter().map(|x| self.ensemble.uncertainty(x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_base::rng::seeded;
    use er_classifier::TrainConfig;
    use rand::Rng;

    #[test]
    fn baseline_ranks_ambiguous_outputs_highest() {
        let outputs = [0.99, 0.55, 0.5, 0.02, 0.7];
        let scores = baseline_scores(&outputs);
        assert_eq!(scores.len(), 5);
        // 0.5 is the riskiest, 0.99/0.02 the safest.
        let max_idx = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(max_idx, 2);
        assert!(scores[0] < scores[1]);
        assert!(scores[3] < scores[4]);
        // Out-of-range values are clamped rather than producing weird scores.
        assert!((baseline_scores(&[1.3])[0] - 0.0).abs() < 1e-12);
    }

    #[test]
    fn uncertainty_scorer_wraps_ensemble_disagreement() {
        let mut rng = seeded(1);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..300 {
            let v: f64 = rng.gen_range(-1.0..1.0);
            let noise: f64 = rng.gen_range(-0.3..0.3);
            xs.push(vec![v]);
            ys.push(if v + noise > 0.0 { 1.0 } else { 0.0 });
        }
        let ensemble = BootstrapEnsemble::train(
            &xs,
            &ys,
            10,
            &TrainConfig {
                epochs: 30,
                ..Default::default()
            },
        );
        let scorer = UncertaintyScorer::new(&ensemble);
        let scores = scorer.scores(&[vec![0.02], vec![0.95]]);
        assert_eq!(scores.len(), 2);
        assert!(scores[0] >= scores[1], "boundary point should be at least as uncertain");
        assert!(scores.iter().all(|s| (0.0..=0.25).contains(s)));
    }
}
