//! # er-bench
//!
//! Benchmark harness of the reproduction: one binary per table/figure of the
//! paper (printing the same rows/series the paper reports) and Criterion
//! benches for the performance-sensitive building blocks.
//!
//! Binaries (run with `cargo run -p er-bench --release --bin <name> [scale]`):
//!
//! | Binary    | Reproduces |
//! |-----------|------------|
//! | `table2`  | Table 2 — dataset statistics |
//! | `fig9`    | Figure 9 — comparative AUROC on DS/AB/AG/SG × 3 ratios |
//! | `fig10`   | Figure 10 — out-of-distribution evaluation (DA2DS, AB2AG) |
//! | `fig11`   | Figure 11 — LearnRisk vs HoloClean |
//! | `fig12`   | Figure 12 — sensitivity to risk-training data size |
//! | `fig13`   | Figure 13 — scalability of rule generation / risk training |
//! | `fig14`   | Figure 14 — active learning |
//! | `ablation`| Design-choice ablations called out in DESIGN.md |

#![warn(missing_docs)]

use er_eval::ExperimentConfig;

/// Parses the workload scale from the first CLI argument (default
/// `default_scale`), with the seed fixed at 2020 for reproducibility.
///
/// An unparsable argument falls back to the default but warns on stderr, so a
/// typo cannot silently run a long experiment at the wrong scale.
pub fn config_from_args(default_scale: f64) -> ExperimentConfig {
    let scale = match std::env::args().nth(1) {
        None => default_scale,
        Some(arg) => match arg.trim().parse::<f64>() {
            Ok(scale) => scale,
            Err(_) => {
                eprintln!("warning: could not parse scale argument {arg:?}; using default {default_scale}");
                default_scale
            }
        },
    };
    ExperimentConfig { scale, seed: 2020 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_used_without_args() {
        let c = config_from_args(0.03);
        assert!(c.scale > 0.0);
        assert_eq!(c.seed, 2020);
    }
}
