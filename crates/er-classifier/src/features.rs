//! Pair → feature-vector extraction for the machine classifiers.
//!
//! The DeepMatcher substitute consumes the same similarity signals that a deep
//! matcher would learn internally: one feature per basic metric of the
//! [`MetricEvaluator`], standardized to zero mean / unit variance on the
//! training split.

use er_base::Pair;
use er_similarity::MetricEvaluator;
use serde::{Deserialize, Serialize};

/// Standardization parameters learned on training data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Standardizer {
    /// Per-feature means.
    pub means: Vec<f64>,
    /// Per-feature standard deviations (floored at a small epsilon).
    pub stds: Vec<f64>,
}

impl Standardizer {
    /// Fits the standardizer on a feature matrix (rows = examples).
    pub fn fit(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "cannot fit a standardizer on no rows");
        let dim = rows[0].len();
        let n = rows.len() as f64;
        let mut means = vec![0.0; dim];
        for row in rows {
            for (m, &x) in means.iter_mut().zip(row) {
                *m += x;
            }
        }
        means.iter_mut().for_each(|m| *m /= n);
        let mut vars = vec![0.0; dim];
        for row in rows {
            for ((v, &x), &m) in vars.iter_mut().zip(row).zip(&means) {
                *v += (x - m).powi(2);
            }
        }
        let stds = vars.into_iter().map(|v| (v / n).sqrt().max(1e-6)).collect();
        Standardizer { means, stds }
    }

    /// Applies the transformation to one row in place.
    pub fn transform_row(&self, row: &mut [f64]) {
        for ((x, &m), &s) in row.iter_mut().zip(&self.means).zip(&self.stds) {
            *x = (*x - m) / s;
        }
    }

    /// Applies the transformation to a whole matrix, returning a new matrix.
    pub fn transform(&self, rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
        rows.iter()
            .map(|r| {
                let mut row = r.clone();
                self.transform_row(&mut row);
                row
            })
            .collect()
    }
}

/// A featurizer: metric evaluation plus standardization.
#[derive(Debug, Clone)]
pub struct PairFeaturizer {
    evaluator: MetricEvaluator,
    standardizer: Option<Standardizer>,
}

impl PairFeaturizer {
    /// Creates a featurizer over an existing metric evaluator; the
    /// standardizer is fitted lazily by [`PairFeaturizer::fit`].
    pub fn new(evaluator: MetricEvaluator) -> Self {
        Self {
            evaluator,
            standardizer: None,
        }
    }

    /// Number of features produced per pair.
    pub fn dim(&self) -> usize {
        self.evaluator.len()
    }

    /// The underlying metric evaluator.
    pub fn evaluator(&self) -> &MetricEvaluator {
        &self.evaluator
    }

    /// Fits the standardizer on the training pairs and returns the
    /// standardized training matrix.
    pub fn fit(&mut self, train: &[Pair]) -> Vec<Vec<f64>> {
        let raw = self.evaluator.eval_pairs(train);
        let std = Standardizer::fit(&raw);
        let out = std.transform(&raw);
        self.standardizer = Some(std);
        out
    }

    /// Featurizes pairs using the fitted standardizer (or raw metric values if
    /// [`PairFeaturizer::fit`] has not been called).
    pub fn features(&self, pairs: &[Pair]) -> Vec<Vec<f64>> {
        let raw = self.evaluator.eval_pairs(pairs);
        match &self.standardizer {
            Some(s) => s.transform(&raw),
            None => raw,
        }
    }

    /// Featurizes a single pair.
    pub fn features_one(&self, pair: &Pair) -> Vec<f64> {
        let mut row = self.evaluator.eval_all(&pair.left, &pair.right);
        if let Some(s) = &self.standardizer {
            s.transform_row(&mut row);
        }
        row
    }
}

/// Extracts the binary class targets (1.0 = equivalent) of a pair slice.
pub fn targets(pairs: &[Pair]) -> Vec<f64> {
    pairs.iter().map(|p| p.truth.as_f64()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_base::{AttrDef, AttrType, AttrValue, Label, PairId, Record, RecordId, Schema};
    use std::sync::Arc;

    fn pairs() -> (Arc<Schema>, Vec<Pair>) {
        let schema = Arc::new(Schema::new(vec![
            AttrDef::new("name", AttrType::Text),
            AttrDef::new("year", AttrType::Numeric),
        ]));
        let rec = |id: u32, name: &str, year: f64| {
            Arc::new(Record::new(
                RecordId(id),
                vec![AttrValue::from(name), AttrValue::Num(year)],
            ))
        };
        let ps = vec![
            Pair::new(
                PairId(0),
                rec(0, "deep learning for matching", 2018.0),
                rec(1, "deep learning for matching", 2018.0),
                Label::Equivalent,
            ),
            Pair::new(
                PairId(1),
                rec(2, "spatial join processing", 1993.0),
                rec(3, "graph mining at scale", 2009.0),
                Label::Inequivalent,
            ),
            Pair::new(
                PairId(2),
                rec(4, "query optimization", 1988.0),
                rec(5, "query optimization revisited", 1989.0),
                Label::Inequivalent,
            ),
        ];
        (schema, ps)
    }

    #[test]
    fn standardizer_zero_mean_unit_variance() {
        let rows = vec![vec![1.0, 10.0], vec![3.0, 20.0], vec![5.0, 30.0]];
        let s = Standardizer::fit(&rows);
        let t = s.transform(&rows);
        for col in 0..2 {
            let mean: f64 = t.iter().map(|r| r[col]).sum::<f64>() / 3.0;
            let var: f64 = t.iter().map(|r| (r[col] - mean).powi(2)).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-9);
            assert!((var - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn constant_features_do_not_blow_up() {
        let rows = vec![vec![5.0], vec![5.0], vec![5.0]];
        let s = Standardizer::fit(&rows);
        let t = s.transform(&rows);
        assert!(t.iter().all(|r| r[0].abs() < 1e-6));
    }

    #[test]
    fn featurizer_produces_fixed_width_rows() {
        let (schema, ps) = pairs();
        let evaluator = MetricEvaluator::from_pairs(schema, &ps);
        let mut f = PairFeaturizer::new(evaluator);
        let train = f.fit(&ps);
        assert_eq!(train.len(), 3);
        assert!(train.iter().all(|r| r.len() == f.dim()));
        let one = f.features_one(&ps[0]);
        assert_eq!(one.len(), f.dim());
        assert_eq!(f.features(&ps).len(), 3);
    }

    #[test]
    fn targets_encode_labels() {
        let (_, ps) = pairs();
        assert_eq!(targets(&ps), vec![1.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "cannot fit")]
    fn empty_fit_panics() {
        Standardizer::fit(&[]);
    }
}
