//! Offline stand-in for `serde` with a *working* self-describing data model.
//!
//! Earlier revisions of this crate only mirrored serde's import surface with
//! marker traits; the serving subsystem (`er-serve`) needs real model
//! persistence, so the stand-in now implements a value-tree serialization
//! model:
//!
//! * [`Value`] — a JSON-like self-describing tree (null, bool, integers,
//!   floats, strings, sequences, ordered maps);
//! * [`Serialize`] / [`Deserialize`] — converted to/from [`Value`] via
//!   [`Serialize::to_value`] and [`Deserialize::from_value`], derived for
//!   structs and enums by the companion `serde_derive` crate;
//! * [`json`] — a JSON writer/parser for [`Value`] with **bit-exact** `f64`
//!   round-tripping (floats are rendered with Rust's shortest round-trip
//!   formatting and non-finite values use the `NaN` / `Infinity` tokens).
//!
//! The API is intentionally a simplification of real serde (no `Serializer`
//! visitors, no zero-copy borrowing): callers serialize through
//! [`json::to_string`] / [`json::from_str`], which mirror `serde_json`. To
//! swap in the real crates, point `[workspace.dependencies]` at the registry
//! and replace `serde::json::` call sites with `serde_json::`.

#![warn(missing_docs)]

use std::fmt;
use std::sync::Arc;

pub use serde_derive::{Deserialize, Serialize};

pub mod json;

/// A self-describing serialized value: the JSON data model plus a
/// signed/unsigned integer split so `u64`/`i64` round-trip without loss.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / null value.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer (used for negative integers).
    Int(i64),
    /// Unsigned integer (used for non-negative integers).
    UInt(u64),
    /// IEEE-754 double. Round-trips bit-exactly through [`json`].
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Ordered sequence.
    Seq(Vec<Value>),
    /// Ordered map with string keys (insertion order is preserved so output
    /// is deterministic).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Short human-readable name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }

    /// The entries of a map value.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements of a sequence value.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The string content of a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a key in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|entries| entries.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Serialization/deserialization error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error from a message.
    pub fn new(message: impl Into<String>) -> Self {
        Error(message.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types convertible into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a serialized value.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
///
/// The `'de` lifetime mirrors real serde's signature so `use serde::{...}`
/// and derive bounds stay source-compatible; this stand-in always copies out
/// of the tree instead of borrowing.
pub trait Deserialize<'de>: Sized {
    /// Reconstructs `Self` from a serialized value.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Converts any serializable value into a [`Value`] tree (mirrors
/// `serde_json::to_value`).
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Reconstructs a value from a [`Value`] tree (mirrors
/// `serde_json::from_value`).
pub fn from_value<T: for<'de> Deserialize<'de>>(value: &Value) -> Result<T, Error> {
    T::from_value(value)
}

/// Looks up `key` in a struct's serialized map and deserializes it, attaching
/// field context to errors. A missing key is deserialized from [`Value::Null`]
/// (so `Option` fields absent from older artifacts read as `None`), and only
/// errors if the field type rejects null.
///
/// This is the runtime support function used by the derived `Deserialize`
/// impls; it is not intended to be called manually.
pub fn field<T: for<'de> Deserialize<'de>>(entries: &[(String, Value)], key: &str, ty: &str) -> Result<T, Error> {
    match entries.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_value(v).map_err(|e| Error::new(format!("{ty}.{key}: {e}"))),
        None => T::from_value(&Value::Null).map_err(|_| Error::new(format!("{ty}: missing field `{key}`"))),
    }
}

// ---------------------------------------------------------------------------
// Implementations for primitives and common std types
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!("expected bool, found {}", other.kind()))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }

        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = match value {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    other => {
                        return Err(Error::new(format!(
                            "expected unsigned integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::new(format!("integer {raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::UInt(v as u64)
                } else {
                    Value::Int(v)
                }
            }
        }

        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw: i64 = match value {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u)
                        .map_err(|_| Error::new(format!("integer {u} out of range for i64")))?,
                    other => {
                        return Err(Error::new(format!("expected integer, found {}", other.kind())))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::new(format!("integer {raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Float(f) => Ok(*f),
            // Integral floats print without a fraction and parse back as
            // integers; fold them back into the float domain.
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            other => Err(Error::new(format!("expected number, found {}", other.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        // f32 → f64 widening is exact, so the f64 path round-trips f32 too.
        Value::Float(f64::from(*self))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::new(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<'de> Deserialize<'de> for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = String::from_value(value)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::new(format!("expected single-character string, found {s:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: for<'x> Deserialize<'x>> Deserialize<'de> for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_seq()
            .ok_or_else(|| Error::new(format!("expected sequence, found {}", value.kind())))?;
        items
            .iter()
            .enumerate()
            .map(|(i, v)| T::from_value(v).map_err(|e| Error::new(format!("[{i}]: {e}"))))
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: for<'x> Deserialize<'x>, const N: usize> Deserialize<'de> for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(value)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::new(format!("expected array of {N} elements, found {len}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<'de, T: for<'x> Deserialize<'x>> Deserialize<'de> for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<'de, T: for<'x> Deserialize<'x>> Deserialize<'de> for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<'de, T: for<'x> Deserialize<'x>> Deserialize<'de> for Arc<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        // Sharing is not preserved: each occurrence deserializes into its own
        // allocation. Acceptable for the model-artifact payloads this crate
        // serves; do not rely on pointer identity after a round trip.
        T::from_value(value).map(Arc::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+);)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<'de, $($name: for<'x> Deserialize<'x>),+> Deserialize<'de> for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value
                    .as_seq()
                    .ok_or_else(|| Error::new(format!("expected sequence, found {}", value.kind())))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::new(format!(
                        "expected {expected}-tuple, found sequence of {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(u32::from_value(&7u32.to_value()), Ok(7));
        assert_eq!(i64::from_value(&(-3i64).to_value()), Ok(-3));
        assert_eq!(usize::from_value(&Value::Int(5)), Ok(5));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(String::from_value(&"hi".to_value()), Ok("hi".to_owned()));
        assert_eq!(char::from_value(&'q'.to_value()), Ok('q'));
        assert_eq!(Vec::<u8>::from_value(&vec![1u8, 2, 3].to_value()), Ok(vec![1u8, 2, 3]));
        assert_eq!(Option::<u8>::from_value(&Value::Null), Ok(None));
        assert_eq!(Option::<u8>::from_value(&Value::UInt(4)), Ok(Some(4)));
        assert_eq!(<(u8, f64)>::from_value(&(3u8, 0.25f64).to_value()), Ok((3u8, 0.25)));
    }

    #[test]
    fn out_of_range_integers_are_rejected() {
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(u32::from_value(&Value::Int(-1)).is_err());
        assert!(i8::from_value(&Value::Int(200)).is_err());
        assert!(i64::from_value(&Value::UInt(u64::MAX)).is_err());
    }

    #[test]
    fn type_mismatches_report_kinds() {
        let err = bool::from_value(&Value::Str("x".into())).unwrap_err();
        assert!(err.to_string().contains("expected bool"), "{err}");
        let err = Vec::<f64>::from_value(&Value::Bool(true)).unwrap_err();
        assert!(err.to_string().contains("expected sequence"), "{err}");
    }

    #[test]
    fn integral_floats_survive_integer_folding() {
        // 2.0 may serialize through the integer domain in JSON; f64's
        // deserializer folds it back.
        assert_eq!(f64::from_value(&Value::UInt(2)), Ok(2.0));
        assert_eq!(f64::from_value(&Value::Int(-2)), Ok(-2.0));
    }

    #[test]
    fn arc_and_box_round_trip_by_value() {
        let arc = Arc::new(41u32);
        assert_eq!(Arc::<u32>::from_value(&arc.to_value()), Ok(Arc::new(41)));
        let boxed = Box::new(0.5f64);
        assert_eq!(Box::<f64>::from_value(&boxed.to_value()), Ok(Box::new(0.5)));
    }

    #[test]
    fn value_lookup_helpers() {
        let v = Value::Map(vec![
            ("a".into(), Value::UInt(1)),
            ("b".into(), Value::Seq(vec![Value::Null])),
        ]);
        assert_eq!(v.get("a"), Some(&Value::UInt(1)));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.kind(), "map");
        assert_eq!(Value::Null.kind(), "null");
        assert_eq!(field::<u8>(v.as_map().unwrap(), "a", "T"), Ok(1));
        assert!(field::<u8>(v.as_map().unwrap(), "missing", "T")
            .unwrap_err()
            .to_string()
            .contains("missing field"));
    }
}
